//! The `joinABprime` benchmark: every algorithm at three memory ratios,
//! reporting both the simulated response time (virtual microseconds) and
//! the harness wall-clock. Built with `--features parallel` it runs each
//! point twice — serial executor, then thread-parallel — and reports the
//! wall-clock speedup; the virtual-time results must not change.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin joinabprime
//! cargo run --release -p gamma-bench --features parallel --bin joinabprime
//! cargo run --release -p gamma-bench --bin joinabprime -- --scale 0.2 --out BENCH_joinabprime.json
//! ```
//!
//! With the (default) `metrics` feature each point also records its peak
//! buffer-pool residency, total ring packets, and short-circuit ratio —
//! deterministic counters the `regress` binary gates exactly. The JSON
//! schema is documented in `EXPERIMENTS.md`.

use std::time::Instant;

use gamma_bench::Workload;
use gamma_core::query::Algorithm;
use gamma_core::JoinReport;

const RATIOS: [f64; 3] = [1.0, 0.5, 0.2];

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

struct Row {
    algorithm: String,
    ratio: f64,
    virtual_us: u64,
    wall_ms: f64,
    serial_wall_ms: Option<f64>,
    speedup: Option<f64>,
    peak_pool_pages: Option<u64>,
    packets: u64,
    short_circuit_ratio: f64,
}

struct RunOut {
    report: JoinReport,
    #[cfg(feature = "metrics")]
    registry: gamma_metrics::Registry,
}

fn measure(w: &Workload, alg: Algorithm, ratio: f64) -> (RunOut, f64) {
    let t = Instant::now();
    #[cfg(feature = "metrics")]
    let out = {
        let run = gamma_bench::metrics::metrics_join(w, alg, ratio, false, false);
        RunOut {
            report: run.report,
            registry: run.registry,
        }
    };
    #[cfg(not(feature = "metrics"))]
    let out = RunOut {
        report: gamma_bench::SweepBuilder::new(w).run_one(alg, ratio).report,
    };
    (out, t.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_path = String::from("BENCH_joinabprime.json");
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        scale = args[i + 1].parse().expect("scale must be a float");
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args[i + 1].clone();
    }

    let w = Workload::scaled(
        (100_000f64 * scale).round() as usize,
        (10_000f64 * scale).round() as usize,
    );

    let parallel_build = cfg!(feature = "parallel");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for alg in ALGORITHMS {
        for ratio in RATIOS {
            // Serial reference first (with the feature off this is the
            // only measurement).
            #[cfg(feature = "parallel")]
            gamma_core::exec::set_parallel(false);
            let (sp, serial_ms) = measure(&w, alg, ratio);

            let (p, wall_ms, serial_wall_ms, speedup) = if parallel_build {
                #[cfg(feature = "parallel")]
                gamma_core::exec::set_parallel(true);
                let (pp, par_ms) = measure(&w, alg, ratio);
                assert_eq!(
                    sp.report.response,
                    pp.report.response,
                    "{} at {ratio}: parallel executor changed the simulated response",
                    alg.name()
                );
                assert_eq!(
                    sp.report.result_checksum,
                    pp.report.result_checksum,
                    "{} at {ratio}: parallel executor changed the result",
                    alg.name()
                );
                #[cfg(feature = "metrics")]
                assert_eq!(
                    gamma_metrics::json::render(&sp.registry),
                    gamma_metrics::json::render(&pp.registry),
                    "{} at {ratio}: parallel executor changed the metrics snapshot",
                    alg.name()
                );
                (pp, par_ms, Some(serial_ms), Some(serial_ms / par_ms))
            } else {
                (sp, serial_ms, None, None)
            };

            println!(
                "{:<10} ratio {:>4}: {:>12} virtual-us   {:>8.1} ms wall{}",
                p.report.algorithm,
                ratio,
                p.report.response.as_us(),
                wall_ms,
                match speedup {
                    Some(s) => format!("   ({s:.2}x vs serial)"),
                    None => String::new(),
                }
            );
            let packets = p.report.packets();
            let sc = p.report.shortcircuits();
            let short_circuit_ratio = if sc + packets > 0 {
                sc as f64 / (sc + packets) as f64
            } else {
                0.0
            };
            #[cfg(feature = "metrics")]
            let peak_pool_pages = Some(p.registry.gauge_peak("pool_peak_pages").unwrap_or(0));
            #[cfg(not(feature = "metrics"))]
            let peak_pool_pages = None;
            rows.push(Row {
                algorithm: p.report.algorithm.clone(),
                ratio,
                virtual_us: p.report.response.as_us(),
                wall_ms,
                serial_wall_ms,
                speedup,
                peak_pool_pages,
                packets,
                short_circuit_ratio,
            });
        }
    }

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"joinABprime\",\n  \"scale\": {scale},\n  \"executor\": \"{}\",\n  \"threads\": {threads},\n",
        if parallel_build { "parallel" } else { "serial" }
    ));
    json.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "null".into(),
        };
        let opt_u = |v: Option<u64>| match v {
            Some(x) => format!("{x}"),
            None => "null".into(),
        };
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"memory_ratio\": {}, \"response_virtual_us\": {}, \"wall_ms\": {:.3}, \"serial_wall_ms\": {}, \"speedup\": {}, \"peak_pool_pages\": {}, \"packets\": {}, \"short_circuit_ratio\": {:.6}}}{}\n",
            r.algorithm,
            r.ratio,
            r.virtual_us,
            r.wall_ms,
            opt(r.serial_wall_ms),
            opt(r.speedup),
            opt_u(r.peak_pool_pages),
            r.packets,
            r.short_circuit_ratio,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");

    if parallel_build {
        let best = rows.iter().filter_map(|r| r.speedup).fold(0.0f64, f64::max);
        println!("best wall-clock speedup: {best:.2}x on {threads} threads");
    }
}
