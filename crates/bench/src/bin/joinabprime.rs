//! The `joinABprime` benchmark: every algorithm at three memory ratios,
//! reporting both the simulated response time (virtual microseconds) and
//! the harness wall-clock. When a worker pool is active (built with
//! `--features parallel`, or forced with `--pool N`) it runs each point
//! twice — serial executor, then pooled — asserts the virtual-time
//! results and metrics snapshots are identical, and reports the
//! wall-clock speedup. Independent points are dispatched on the same
//! pool; rows are gathered in submission order so the output never
//! depends on scheduling.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin joinabprime
//! cargo run --release -p gamma-bench --features parallel --bin joinabprime
//! cargo run --release -p gamma-bench --bin joinabprime -- --pool 4 --scale 0.2
//! cargo run --release -p gamma-bench --bin joinabprime -- --no-wall --out BENCH.json
//! ```
//!
//! `--no-wall` nulls every wall-clock field and drops the executor
//! envelope so the JSON is byte-identical across hosts and pool sizes —
//! that is what CI byte-diffs. With the (default) `metrics` feature each
//! point also records its peak buffer-pool residency, total ring
//! packets, and short-circuit ratio — deterministic counters the
//! `regress` binary gates exactly. The JSON schema is documented in
//! `EXPERIMENTS.md`.

use std::sync::Arc;
use std::time::Instant;

use gamma_bench::alloc::{count_allocs, CountingAlloc};
use gamma_bench::{pooled_map_on, Workload};
use gamma_core::query::Algorithm;
use gamma_core::{ExecConfig, JoinReport, WorkerPool};

/// Counting allocator so each point can report a deterministic `allocs`
/// column (serial runs only — pool bookkeeping would pollute the delta).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const RATIOS: [f64; 3] = [1.0, 0.5, 0.2];

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

struct Row {
    algorithm: String,
    ratio: f64,
    virtual_us: u64,
    wall_ms: f64,
    serial_wall_ms: Option<f64>,
    speedup: Option<f64>,
    peak_pool_pages: Option<u64>,
    packets: u64,
    short_circuit_ratio: f64,
    /// Heap allocations during the serial run; `None` when a pool is
    /// active (concurrent points would pollute the global counter).
    allocs: Option<u64>,
    /// Pool chunk jobs retired while this point ran (`hostprof` feature;
    /// `None` otherwise). Concurrently dispatched points overlap in the
    /// process-wide counters, so this is observability, not a gate —
    /// like wall-clock, it is nulled under `--no-wall`.
    pool_jobs: Option<u64>,
    /// Wall-clock milliseconds pool workers spent inside this point's
    /// chunk closures (same caveats as `pool_jobs`).
    pool_busy_ms: Option<f64>,
}

/// Snapshot of the process-wide pool counters: `(jobs, busy_ns)`.
fn pool_totals() -> (u64, u64) {
    #[cfg(feature = "hostprof")]
    {
        gamma_core::exec::pool::hostprof::totals()
    }
    #[cfg(not(feature = "hostprof"))]
    {
        (0, 0)
    }
}

struct RunOut {
    report: JoinReport,
    #[cfg(feature = "metrics")]
    registry: gamma_metrics::Registry,
}

fn measure(w: &Workload, alg: Algorithm, ratio: f64, exec: ExecConfig) -> (RunOut, f64) {
    let t = Instant::now();
    #[cfg(feature = "metrics")]
    let out = {
        let run = gamma_bench::metrics::metrics_join_with(w, alg, ratio, false, false, exec);
        RunOut {
            report: run.report,
            registry: run.registry,
        }
    };
    #[cfg(not(feature = "metrics"))]
    let out = RunOut {
        report: gamma_bench::SweepBuilder::new(w)
            .exec(exec)
            .run_one(alg, ratio)
            .report,
    };
    (out, t.elapsed().as_secs_f64() * 1e3)
}

/// One benchmark point: serial reference, then — when a pool is active —
/// the pooled run plus the byte-identity asserts.
fn run_point(w: &Workload, pool: Option<&Arc<WorkerPool>>, alg: Algorithm, ratio: f64) -> Row {
    let pool_before = pool_totals();
    let ((sp, serial_ms), serial_allocs) =
        count_allocs(|| measure(w, alg, ratio, ExecConfig::serial()));
    let allocs = pool.is_none().then_some(serial_allocs);

    let (p, wall_ms, serial_wall_ms, speedup) = match pool {
        Some(pool) => {
            let (pp, par_ms) = measure(w, alg, ratio, ExecConfig::pooled(Arc::clone(pool)));
            assert_eq!(
                sp.report.response,
                pp.report.response,
                "{} at {ratio}: pooled executor changed the simulated response",
                alg.name()
            );
            assert_eq!(
                sp.report.result_checksum,
                pp.report.result_checksum,
                "{} at {ratio}: pooled executor changed the result",
                alg.name()
            );
            #[cfg(feature = "metrics")]
            assert_eq!(
                gamma_metrics::json::render(&sp.registry),
                gamma_metrics::json::render(&pp.registry),
                "{} at {ratio}: pooled executor changed the metrics snapshot",
                alg.name()
            );
            (pp, par_ms, Some(serial_ms), Some(serial_ms / par_ms))
        }
        None => (sp, serial_ms, None, None),
    };

    let packets = p.report.packets();
    let sc = p.report.shortcircuits();
    let short_circuit_ratio = if sc + packets > 0 {
        sc as f64 / (sc + packets) as f64
    } else {
        0.0
    };
    #[cfg(feature = "metrics")]
    let peak_pool_pages = Some(p.registry.gauge_peak("pool_peak_pages").unwrap_or(0));
    #[cfg(not(feature = "metrics"))]
    let peak_pool_pages = None;
    let (pool_jobs, pool_busy_ms) = if cfg!(feature = "hostprof") {
        let after = pool_totals();
        (
            Some(after.0 - pool_before.0),
            Some((after.1 - pool_before.1) as f64 / 1e6),
        )
    } else {
        (None, None)
    };
    Row {
        algorithm: p.report.algorithm.clone(),
        ratio,
        virtual_us: p.report.response.as_us(),
        wall_ms,
        serial_wall_ms,
        speedup,
        peak_pool_pages,
        packets,
        short_circuit_ratio,
        allocs,
        pool_jobs,
        pool_busy_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_path = String::from("BENCH_joinabprime.json");
    let no_wall = args.iter().any(|a| a == "--no-wall");
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        scale = args[i + 1].parse().expect("scale must be a float");
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args[i + 1].clone();
    }
    // `--pool N` builds an explicit pool of that size; otherwise the
    // `parallel` feature opts into the shared process-wide pool.
    let pool: Option<Arc<WorkerPool>> = match args.iter().position(|a| a == "--pool") {
        Some(i) => {
            let n: usize = args[i + 1].parse().expect("pool size must be an integer");
            Some(Arc::new(WorkerPool::new(n)))
        }
        None if cfg!(feature = "parallel") => {
            Some(Arc::clone(gamma_core::exec::pool::default_pool()))
        }
        None => None,
    };

    let w = Workload::scaled(
        (100_000f64 * scale).round() as usize,
        (10_000f64 * scale).round() as usize,
    );

    let cases: Vec<(Algorithm, f64)> = ALGORITHMS
        .into_iter()
        .flat_map(|alg| RATIOS.into_iter().map(move |r| (alg, r)))
        .collect();
    // The same pool that parallelises each point's steps also dispatches
    // the independent points; rows come back in submission order.
    let rows = pooled_map_on(
        pool.as_deref(),
        "joinabprime point",
        cases,
        |(alg, ratio)| run_point(&w, pool.as_ref(), alg, ratio),
    );

    for r in &rows {
        println!(
            "{:<10} ratio {:>4}: {:>12} virtual-us   {:>8.1} ms wall{}{}{}",
            r.algorithm,
            r.ratio,
            r.virtual_us,
            r.wall_ms,
            match r.allocs {
                Some(a) => format!("   {a:>10} allocs"),
                None => String::new(),
            },
            match (r.pool_jobs, r.pool_busy_ms) {
                (Some(j), Some(b)) => format!("   {j:>6} pool jobs ({b:.1} ms busy)"),
                _ => String::new(),
            },
            match r.speedup {
                Some(s) => format!("   ({s:.2}x vs serial)"),
                None => String::new(),
            }
        );
    }

    // Hand-rolled JSON (no serde in the offline image).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"joinABprime\",\n  \"scale\": {scale},\n"
    ));
    if !no_wall {
        // The executor envelope is host- and build-dependent; `--no-wall`
        // drops it so CI can byte-diff pooled output against serial.
        let threads = pool.as_ref().map_or(1, |p| p.size());
        json.push_str(&format!(
            "  \"executor\": \"{}\",\n  \"threads\": {threads},\n",
            match &pool {
                Some(p) => format!("pooled({})", p.size()),
                None => "serial".into(),
            }
        ));
    }
    json.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "null".into(),
        };
        let opt_u = |v: Option<u64>| match v {
            Some(x) => format!("{x}"),
            None => "null".into(),
        };
        let wall = if no_wall {
            ("null".to_string(), "null".to_string(), "null".to_string())
        } else {
            (
                format!("{:.3}", r.wall_ms),
                opt(r.serial_wall_ms),
                opt(r.speedup),
            )
        };
        // Allocation counts are deterministic but executor-dependent
        // (pool bookkeeping), so `--no-wall` nulls them like wall-clock:
        // the CI serial-vs-pooled byte-diffs must keep passing.
        let allocs = if no_wall {
            "null".to_string()
        } else {
            opt_u(r.allocs)
        };
        // Host-side pool profile columns are wall-clock observability
        // (`hostprof` feature); `--no-wall` nulls them so serial-vs-pooled
        // byte-diffs keep holding.
        let (pool_jobs, pool_busy_ms) = if no_wall {
            ("null".to_string(), "null".to_string())
        } else {
            (opt_u(r.pool_jobs), opt(r.pool_busy_ms))
        };
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"memory_ratio\": {}, \"response_virtual_us\": {}, \"wall_ms\": {}, \"serial_wall_ms\": {}, \"speedup\": {}, \"peak_pool_pages\": {}, \"packets\": {}, \"short_circuit_ratio\": {:.6}, \"allocs\": {}, \"pool_jobs\": {}, \"pool_busy_ms\": {}}}{}\n",
            r.algorithm,
            r.ratio,
            r.virtual_us,
            wall.0,
            wall.1,
            wall.2,
            opt_u(r.peak_pool_pages),
            r.packets,
            r.short_circuit_ratio,
            allocs,
            pool_jobs,
            pool_busy_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");

    if let Some(p) = &pool {
        let best = rows.iter().filter_map(|r| r.speedup).fold(0.0f64, f64::max);
        println!(
            "best wall-clock speedup: {best:.2}x on {} pool lanes",
            p.size()
        );
    }

    #[cfg(feature = "hostprof")]
    print!("{}", gamma_core::exec::pool::hostprof::report());
}
