//! Virtual-time perf-regression gate.
//!
//! Replays every point of the committed `BENCH_joinabprime.json` baseline
//! (at the scale the baseline records) with the metrics registry installed,
//! then fails — exit code 1 — if any of:
//!
//! * a point's `response_virtual_us` drifts more than the tolerance
//!   (default 1%) in either direction;
//! * a deterministic counter (`packets`, `peak_pool_pages`) changes at all;
//! * any run's metric snapshot fails ledger reconciliation (a charged
//!   microsecond or byte became unattributable);
//! * a committed metrics snapshot under `results/` is no longer
//!   byte-identical to a fresh run of the same point;
//! * a committed `BENCH_serve.json` point's virtual-time quantities
//!   (makespan, response percentiles, admission wait) drift past the
//!   tolerance, or its identity fields (`completed`,
//!   `mean_interarrival_us`) change at all;
//! * a committed `BENCH_skew.json` point's response time drifts past the
//!   tolerance, or any of its deterministic counters (overflow passes,
//!   spill/restore pages, buckets, result cardinality) change at all;
//! * a serial replay of any `ALLOC_CEILINGS.json` point performs more heap
//!   allocations than its committed ceiling (Gate 5 — the data-plane
//!   allocation-regression gate). This gate only runs on serial builds:
//!   worker pools allocate their own bookkeeping concurrently, so pooled
//!   counts are not deterministic;
//! * a committed flight-recorder profile under `results/prof-*.json` is no
//!   longer byte-identical to a fresh replay of the same point (Gate 6 —
//!   any drift in the sampled utilisation/queue/occupancy series fails).
//!
//! Every gate runs to completion; the binary ends with a per-gate summary
//! table (gate, points checked, status, first offending field/point)
//! before exiting non-zero if any gate failed.
//!
//! Wall-clock fields in the baseline are ignored — they measure the host.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin regress
//! cargo run --release -p gamma-bench --bin regress -- --tolerance-pct 0.5
//! cargo run --release -p gamma-bench --bin regress -- --write   # refresh snapshots
//! ```
//!
//! `--write` regenerates the snapshot baselines (for intentional model
//! changes), the flight-recorder profiles and, on serial builds, the
//! allocation ceilings; the response-time baseline itself is refreshed by
//! rerunning the `joinabprime` binary.

use gamma_bench::alloc::{count_allocs, CountingAlloc};
use gamma_bench::metrics::{metrics_join, metrics_join_with, reconcile};
use gamma_bench::regress::{
    compare_alloc_points, compare_points, compare_serve_points, compare_skew_points,
    diff_snapshots, parse_alloc_ceilings, parse_bench_points, parse_scale, parse_serve_envelope,
    parse_serve_points, parse_skew_envelope, parse_skew_points, render_alloc_ceilings,
    render_gate_table, AllocCeiling, BenchPoint, GateSummary, ServeBenchPoint, SkewBenchPoint,
};
use gamma_bench::serve::{serve_sweep, ServeSweepConfig};
use gamma_bench::skew::{skew_sweep, SkewSweepConfig};
use gamma_bench::{pooled_map, prof, Workload};
use gamma_core::query::Algorithm;
use gamma_core::ExecConfig;

/// Counting allocator for Gate 5 — free when idle, and the other gates'
/// comparisons never read it.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The snapshot points kept under `results/` — same points the `trace`
/// and `prof` binaries export, so the artifact sets describe the same
/// runs.
const SNAPSHOT_POINTS: [(Algorithm, f64); 2] =
    [(Algorithm::HybridHash, 0.5), (Algorithm::GraceHash, 0.2)];

/// `A`-relation cardinality for the snapshot points (the `trace` binary's
/// default; `Bprime` is a 10% sample).
const SNAPSHOT_SCALE: usize = 20_000;

/// Workload scale the allocation ceilings are recorded at (the same
/// `--scale 0.2` sweep EXPERIMENTS.md benchmarks wall-clock on).
const ALLOC_SCALE: f64 = 0.2;

fn algorithm_by_name(name: &str) -> Algorithm {
    match name {
        "sort-merge" => Algorithm::SortMerge,
        "simple" => Algorithm::SimpleHash,
        "grace" => Algorithm::GraceHash,
        "hybrid" => Algorithm::HybridHash,
        other => panic!("baseline names unknown algorithm `{other}`"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = String::from("BENCH_joinabprime.json");
    let mut serve_baseline_path = String::from("BENCH_serve.json");
    let mut skew_baseline_path = String::from("BENCH_skew.json");
    let mut alloc_baseline_path = String::from("ALLOC_CEILINGS.json");
    let mut snapshot_dir = String::from("results");
    let mut tolerance_pct = 1.0f64;
    let mut write = false;
    if let Some(i) = args.iter().position(|a| a == "--baseline") {
        baseline_path = args[i + 1].clone();
    }
    if let Some(i) = args.iter().position(|a| a == "--serve-baseline") {
        serve_baseline_path = args[i + 1].clone();
    }
    if let Some(i) = args.iter().position(|a| a == "--skew-baseline") {
        skew_baseline_path = args[i + 1].clone();
    }
    if let Some(i) = args.iter().position(|a| a == "--alloc-baseline") {
        alloc_baseline_path = args[i + 1].clone();
    }
    if let Some(i) = args.iter().position(|a| a == "--snapshots") {
        snapshot_dir = args[i + 1].clone();
    }
    if let Some(i) = args.iter().position(|a| a == "--tolerance-pct") {
        tolerance_pct = args[i + 1].parse().expect("tolerance must be a float");
    }
    if args.iter().any(|a| a == "--write") {
        write = true;
    }

    let mut gates: Vec<GateSummary> = Vec::new();

    // --- Gate 1: baseline points vs fresh runs -------------------------
    {
        let mut errors: Vec<String> = Vec::new();
        let doc = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = parse_bench_points(&doc);
        assert!(!baseline.is_empty(), "{baseline_path} has no points");
        let scale = parse_scale(&doc);
        let w = Workload::scaled(
            (100_000f64 * scale).round() as usize,
            (10_000f64 * scale).round() as usize,
        );
        println!(
            "regress: replaying {} baseline points at scale {scale} (tolerance {tolerance_pct}%)",
            baseline.len()
        );
        // Replay the points on the pool (when one is active); results gather
        // in baseline order, so the printed table and the comparison are
        // independent of scheduling.
        let replayed = pooled_map("regress point", baseline.iter().collect(), |b| {
            let alg = algorithm_by_name(&b.algorithm);
            let run = metrics_join(&w, alg, b.memory_ratio, false, false);
            let recon: Vec<String> = reconcile(&run.registry, &run.report)
                .into_iter()
                .map(|e| {
                    format!(
                        "{} @ ratio {}: reconciliation: {e}",
                        b.algorithm, b.memory_ratio
                    )
                })
                .collect();
            let packets = run.report.packets();
            let sc = run.report.shortcircuits();
            let point = BenchPoint {
                algorithm: b.algorithm.clone(),
                memory_ratio: b.memory_ratio,
                response_virtual_us: run.report.response.as_us(),
                peak_pool_pages: Some(run.registry.gauge_peak("pool_peak_pages").unwrap_or(0)),
                packets: Some(packets),
                short_circuit_ratio: if sc + packets > 0 {
                    Some(sc as f64 / (sc + packets) as f64)
                } else {
                    Some(0.0)
                },
            };
            (point, recon)
        });
        let mut fresh = Vec::new();
        for (point, recon) in replayed {
            println!(
                "  {:<10} ratio {:>4}: {:>12} virtual-us  {:>8} packets",
                point.algorithm,
                point.memory_ratio,
                point.response_virtual_us,
                point.packets.unwrap_or(0)
            );
            errors.extend(recon);
            fresh.push(point);
        }
        errors.extend(compare_points(&baseline, &fresh, tolerance_pct));
        gates.push(GateSummary::ran(
            "1: joinabprime baseline",
            baseline.len(),
            errors,
        ));
    }

    // --- Gate 2: committed metric snapshots ----------------------------
    // Render the snapshot runs on the pool; file reads/writes and the
    // byte-diffs stay sequential, in SNAPSHOT_POINTS order.
    {
        let mut errors: Vec<String> = Vec::new();
        let snapshots = pooled_map(
            "snapshot point",
            SNAPSHOT_POINTS.to_vec(),
            |(alg, ratio)| {
                let run = metrics_join(
                    &Workload::scaled(SNAPSHOT_SCALE, SNAPSHOT_SCALE / 10),
                    alg,
                    ratio,
                    false,
                    false,
                );
                let recon: Vec<String> = reconcile(&run.registry, &run.report)
                    .into_iter()
                    .map(|e| {
                        format!(
                            "snapshot {} @ ratio {ratio}: reconciliation: {e}",
                            alg.name()
                        )
                    })
                    .collect();
                (alg, ratio, recon, run.json(), run.prometheus())
            },
        );
        for (alg, ratio, recon, fresh_doc, prom_doc) in snapshots {
            errors.extend(recon);
            let path = format!(
                "{snapshot_dir}/metrics-{}-r{:02}.json",
                alg.name(),
                (ratio * 100.0) as u32
            );
            if write {
                std::fs::create_dir_all(&snapshot_dir).expect("create snapshot dir");
                std::fs::write(&path, &fresh_doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
                println!("  wrote {path}");
                let prom = format!(
                    "{snapshot_dir}/metrics-{}-r{:02}.prom",
                    alg.name(),
                    (ratio * 100.0) as u32
                );
                std::fs::write(&prom, &prom_doc).unwrap_or_else(|e| panic!("write {prom}: {e}"));
                println!("  wrote {prom}");
            } else {
                match std::fs::read_to_string(&path) {
                    Ok(committed) => {
                        let diffs = diff_snapshots(&path, &committed, &fresh_doc);
                        if diffs.is_empty() {
                            println!("  {path}: byte-identical");
                        }
                        errors.extend(diffs);
                    }
                    Err(e) => errors.push(format!(
                        "{path}: unreadable ({e}); run `regress -- --write` to create it"
                    )),
                }
            }
        }
        gates.push(if write {
            GateSummary::skip("2: metric snapshots", "refreshed by --write")
        } else {
            GateSummary::ran("2: metric snapshots", SNAPSHOT_POINTS.len(), errors)
        });
    }

    // --- Gate 3: concurrent-serving baseline ---------------------------
    match std::fs::read_to_string(&serve_baseline_path) {
        Ok(doc) => {
            let mut errors: Vec<String> = Vec::new();
            let baseline = parse_serve_points(&doc);
            let Some((a_rows, queries, budget_multiplier)) = parse_serve_envelope(&doc) else {
                panic!("{serve_baseline_path} has no envelope (a_rows/queries/budget_multiplier)");
            };
            assert!(!baseline.is_empty(), "{serve_baseline_path} has no points");
            let cfg = ServeSweepConfig {
                a_rows,
                queries,
                load_fractions: baseline.iter().map(|p| p.load_fraction).collect(),
                budget_multiplier,
                backlog_window: None,
            };
            println!(
                "regress: replaying {} serve points (A={a_rows} rows, {queries} queries/point)",
                baseline.len()
            );
            let sweep = serve_sweep(&cfg);
            let fresh: Vec<ServeBenchPoint> = sweep
                .points
                .iter()
                .map(|p| ServeBenchPoint {
                    rate_index: p.rate_index as u64,
                    load_fraction: p.load_fraction,
                    mean_interarrival_us: p.mean_interarrival_us,
                    completed: p.completed,
                    makespan_us: p.makespan_us,
                    response_p50_us: p.response_p50_us,
                    response_p99_us: p.response_p99_us,
                    response_p999_us: p.response_p999_us,
                    admission_wait_total_us: p.admission_wait_total_us,
                })
                .collect();
            for p in &fresh {
                println!(
                    "  serve point {}: makespan {:>12} us  p50 {:>10} us  p99 {:>10} us",
                    p.rate_index, p.makespan_us, p.response_p50_us, p.response_p99_us
                );
            }
            errors.extend(compare_serve_points(&baseline, &fresh, tolerance_pct));
            gates.push(GateSummary::ran(
                "3: serve baseline",
                baseline.len(),
                errors,
            ));
        }
        Err(e) => gates.push(GateSummary::ran(
            "3: serve baseline",
            0,
            vec![format!(
                "{serve_baseline_path}: unreadable ({e}); run the `serve` binary to create it"
            )],
        )),
    }

    // --- Gate 4: skew-cliff baseline -----------------------------------
    match std::fs::read_to_string(&skew_baseline_path) {
        Ok(doc) => {
            let mut errors: Vec<String> = Vec::new();
            let baseline = parse_skew_points(&doc);
            let Some((a_rows, bprime_rows)) = parse_skew_envelope(&doc) else {
                panic!("{skew_baseline_path} has no envelope (a_rows/bprime_rows)");
            };
            assert!(!baseline.is_empty(), "{skew_baseline_path} has no points");
            let mut ratios: Vec<f64> = Vec::new();
            for p in &baseline {
                if !ratios.contains(&p.memory_ratio) {
                    ratios.push(p.memory_ratio);
                }
            }
            let cfg = SkewSweepConfig {
                a_rows,
                bprime_rows,
                ratios,
            };
            println!(
                "regress: replaying {} skew points (A={a_rows} rows, Bprime={bprime_rows} rows)",
                baseline.len()
            );
            let sweep = skew_sweep(&cfg);
            let fresh: Vec<SkewBenchPoint> = sweep
                .points
                .iter()
                .map(|p| SkewBenchPoint {
                    skew: p.skew.to_string(),
                    mode: p.mode.to_string(),
                    memory_ratio: p.memory_ratio,
                    response_virtual_us: p.response_virtual_us,
                    overflow_passes: p.overflow_passes as u64,
                    pages_spilled: p.pages_spilled,
                    pages_restored: p.pages_restored,
                    buckets: p.buckets as u64,
                    result_tuples: p.result_tuples,
                })
                .collect();
            for p in &fresh {
                println!(
                    "  {:<8}/{:<6} ratio {:>4}: {:>12} virtual-us  {} passes  {:>4} restored",
                    p.skew,
                    p.mode,
                    p.memory_ratio,
                    p.response_virtual_us,
                    p.overflow_passes,
                    p.pages_restored
                );
            }
            errors.extend(compare_skew_points(&baseline, &fresh, tolerance_pct));
            gates.push(GateSummary::ran("4: skew baseline", baseline.len(), errors));
        }
        Err(e) => gates.push(GateSummary::ran(
            "4: skew baseline",
            0,
            vec![format!(
                "{skew_baseline_path}: unreadable ({e}); run the `skew` binary to create it"
            )],
        )),
    }

    // --- Gate 5: serial allocation ceilings ----------------------------
    if cfg!(feature = "parallel") {
        println!(
            "regress: skipping alloc gate — worker pool active; allocation \
             counts are only deterministic on a serial build"
        );
        gates.push(GateSummary::skip(
            "5: alloc ceilings",
            "worker pool active (serial builds only)",
        ));
    } else if write {
        let (scale, grid) = (
            ALLOC_SCALE,
            [
                Algorithm::SortMerge,
                Algorithm::SimpleHash,
                Algorithm::GraceHash,
                Algorithm::HybridHash,
            ],
        );
        let w = Workload::scaled(
            (100_000f64 * scale).round() as usize,
            (10_000f64 * scale).round() as usize,
        );
        let mut ceilings = Vec::new();
        for alg in grid {
            for ratio in [1.0, 0.5, 0.2] {
                let (run, allocs) = count_allocs(|| {
                    metrics_join_with(&w, alg, ratio, false, false, ExecConfig::serial())
                });
                // ~5% headroom: counts are deterministic for one toolchain,
                // but std container growth policies may shift across rustc
                // releases; the gate targets order-of-magnitude regressions.
                let ceiling = allocs + allocs / 20 + 64;
                println!(
                    "  {:<10} ratio {ratio:>4}: {allocs:>10} allocs (ceiling {ceiling})",
                    run.report.algorithm
                );
                ceilings.push(AllocCeiling {
                    algorithm: run.report.algorithm.clone(),
                    memory_ratio: ratio,
                    ceiling_allocs: ceiling,
                });
            }
        }
        std::fs::write(
            &alloc_baseline_path,
            render_alloc_ceilings(scale, &ceilings),
        )
        .unwrap_or_else(|e| panic!("write {alloc_baseline_path}: {e}"));
        println!("  wrote {alloc_baseline_path}");
        gates.push(GateSummary::skip(
            "5: alloc ceilings",
            "re-recorded by --write",
        ));
    } else {
        match std::fs::read_to_string(&alloc_baseline_path) {
            Ok(doc) => {
                let mut errors: Vec<String> = Vec::new();
                let ceilings = parse_alloc_ceilings(&doc);
                assert!(!ceilings.is_empty(), "{alloc_baseline_path} has no points");
                let scale = parse_scale(&doc);
                let w = Workload::scaled(
                    (100_000f64 * scale).round() as usize,
                    (10_000f64 * scale).round() as usize,
                );
                println!(
                    "regress: replaying {} alloc ceilings at scale {scale} (serial executor)",
                    ceilings.len()
                );
                let mut measured = Vec::new();
                for c in &ceilings {
                    let alg = algorithm_by_name(&c.algorithm);
                    let (_, allocs) = count_allocs(|| {
                        metrics_join_with(&w, alg, c.memory_ratio, false, false, ExecConfig::serial())
                    });
                    println!(
                        "  {:<10} ratio {:>4}: {allocs:>10} allocs (ceiling {})",
                        c.algorithm, c.memory_ratio, c.ceiling_allocs
                    );
                    measured.push((c.algorithm.clone(), c.memory_ratio, allocs));
                }
                errors.extend(compare_alloc_points(&ceilings, &measured));
                gates.push(GateSummary::ran("5: alloc ceilings", ceilings.len(), errors));
            }
            Err(e) => gates.push(GateSummary::ran(
                "5: alloc ceilings",
                0,
                vec![format!(
                    "{alloc_baseline_path}: unreadable ({e}); run `regress -- --write` on a serial build to create it"
                )],
            )),
        }
    }

    // --- Gate 6: committed flight-recorder profiles --------------------
    // Replay the snapshot points through the gamma-prof flight recorder
    // and byte-compare the sampled series against the committed
    // `results/prof-*.json`. The series are pure virtual-time functions of
    // the ledgers, so *any* drift — one microsecond of busy time, one
    // queued request at one tick — fails the gate.
    {
        let mut errors: Vec<String> = Vec::new();
        let profiles = pooled_map("prof point", SNAPSHOT_POINTS.to_vec(), |(alg, ratio)| {
            (
                alg,
                ratio,
                prof::snapshot_doc(alg, ratio, SNAPSHOT_SCALE, prof::TICK_US),
            )
        });
        for (alg, ratio, fresh_doc) in profiles {
            let path = format!("{snapshot_dir}/{}.json", prof::artifact_stem(alg, ratio));
            if write {
                std::fs::create_dir_all(&snapshot_dir).expect("create snapshot dir");
                std::fs::write(&path, &fresh_doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
                println!("  wrote {path}");
            } else {
                match std::fs::read_to_string(&path) {
                    Ok(committed) => {
                        let diffs = diff_snapshots(&path, &committed, &fresh_doc);
                        if diffs.is_empty() {
                            println!("  {path}: byte-identical");
                        }
                        errors.extend(diffs);
                    }
                    Err(e) => errors.push(format!(
                        "{path}: unreadable ({e}); run `regress -- --write` to create it"
                    )),
                }
            }
        }
        gates.push(if write {
            GateSummary::skip("6: flight-recorder profiles", "refreshed by --write")
        } else {
            GateSummary::ran("6: flight-recorder profiles", SNAPSHOT_POINTS.len(), errors)
        });
    }

    // --- Summary -------------------------------------------------------
    let violations: usize = gates.iter().map(|g| g.errors.len()).sum();
    if violations > 0 {
        eprintln!("regress: FAIL — {violations} violation(s):");
        for g in gates.iter().filter(|g| !g.errors.is_empty()) {
            eprintln!("  gate {}:", g.name);
            for e in &g.errors {
                eprintln!("    {e}");
            }
        }
    }
    println!("{}", render_gate_table(&gates));
    if violations == 0 {
        println!("regress: PASS — every gate held");
    } else {
        std::process::exit(1);
    }
}
