//! Ablation studies over the design choices the paper calls out.
//!
//! Every ablation measures its sweep points through [`pooled_map`]: with
//! a worker pool active the independent points run concurrently, results
//! gather in submission order, and all printing happens after the
//! gather — so the output is byte-identical to the serial run.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin ablations -- all
//! cargo run --release -p gamma-bench --bin ablations -- filter_size clearing speedup multiuser headroom
//! ```

use gamma_bench::{pooled_map, SweepBuilder, Workload};
use gamma_core::cost::CostModel;
use gamma_core::query::Algorithm;
use gamma_core::{run_join, Machine, MachineConfig};
use gamma_des::TimingModel;
use gamma_wisconsin::{join_abprime, load_hashed, WisconsinGen, WisconsinRow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: ablations all | filter_size clearing speedup multiuser headroom bucket_filter tuning convoy");
        std::process::exit(2);
    }
    let all = args.iter().any(|a| a == "all");
    let want = |n: &str| all || args.iter().any(|a| a == n);

    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(100_000, 0);
    let b_rows = gen.sample(&a_rows, 10_000, 1);

    if want("filter_size") {
        filter_size(&a_rows, &b_rows);
    }
    if want("clearing") {
        clearing_pct(&a_rows, &b_rows);
    }
    if want("speedup") {
        speedup(&a_rows, &b_rows);
    }
    if want("multiuser") {
        multiuser();
    }
    if want("headroom") {
        headroom(&a_rows, &b_rows);
    }
    if want("bucket_filter") {
        bucket_forming_filters();
    }
    if want("tuning") {
        bucket_tuning();
    }
    if want("convoy") {
        convoy();
    }
}

/// Convoy effects: the queued timing model vs the legacy flat `max()`
/// bound as one knob — disk service time — drives the volumes toward
/// saturation. At the paper's operating point the two models agree to a
/// few percent (the joins are CPU-bound); past ~80 % disk utilisation the
/// flat bound keeps reporting `max(cpu, Σ service)` while the queues make
/// every burst of requests pay its serialisation.
fn convoy() {
    println!("\n== Ablation: convoy effects on a loaded volume (Grace, ratio 0.5) ==");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>11} {:>12}",
        "disk slow", "disk util", "legacy(s)", "queued(s)", "divergence", "disk wait(s)"
    );
    let w = Workload::full();
    let rows = pooled_map("convoy point", vec![1u64, 2, 4, 6, 8], |slow| {
        let run = |model| {
            SweepBuilder::new(&w)
                .timing(model)
                .slow_disk(slow)
                .run_one(Algorithm::GraceHash, 0.5)
        };
        (slow, run(TimingModel::Legacy), run(TimingModel::Queued))
    });
    for (slow, legacy, queued) in rows {
        // Nominal load: aggregate disk service over the flat-bound
        // response across the 8 volumes.
        let util = legacy.report.total.disk.as_secs() / (legacy.seconds * 8.0);
        println!(
            "{:<10} {:>9.0}% {:>12.2} {:>12.2} {:>10.1}% {:>12.2}",
            format!("{slow}x"),
            util * 100.0,
            legacy.seconds,
            queued.seconds,
            (queued.seconds / legacy.seconds - 1.0) * 100.0,
            queued.report.total.disk_wait.as_secs(),
        );
    }
    println!("(The flat bound charges a loaded arm like an idle one, so queued");
    println!(" waits grow monotonically with load — `disk wait` is total time");
    println!(" requests sat in queues. The *relative* divergence peaks while the");
    println!(" flat bound is still CPU-set (bursty writes hide entirely) and");
    println!(" narrows once the disk term itself dominates the max().)");
}

/// Grace bucket tuning \[KITS83\], which §3.3 notes Gamma had not
/// implemented. For well-estimated uniform workloads the paper is right
/// that "the pessimistic choice is the best choice since extra buckets
/// are inexpensive" — tuning buys little. Its value is *robustness*: when
/// the optimizer's size estimate is wrong (here: it believes the inner
/// relation is 4x smaller than it is), the fixed plan overflows while the
/// tuned plan regroups by measured size and doesn't.
fn bucket_tuning() {
    println!("\n== Ablation: Grace bucket tuning under optimizer misestimates ==");
    println!(
        "{:<34} {:>12} {:>8} {:>8}",
        "plan", "response(s)", "rounds", "ovfl"
    );
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(100_000, 0);
    let b_rows = gen.sample(&a_rows, 10_000, 1);
    let cases = vec![
        ("fixed buckets (misestimated 4x)", false),
        ("bucket tuning (measured sizes)", true),
    ];
    let rows = pooled_map("tuning point", cases, |(label, tuned)| {
        let mut machine = Machine::new(MachineConfig::local_8());
        let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
        let b = load_hashed(&mut machine, "Bprime", &b_rows, "unique1");
        let memory = machine.relation(b).data_bytes / 4; // true need: 4 buckets
        let mut spec = join_abprime(Algorithm::GraceHash, b, a, "unique1", "unique1", memory);
        // The optimizer believes |R| is 4x smaller: it plans ONE bucket.
        spec.buckets_override = Some(1);
        spec.bucket_tuning = tuned;
        let r = run_join(&mut machine, &spec);
        (label, r.seconds(), r.buckets, r.overflow_passes)
    });
    for (label, secs, rounds, ovfl) in rows {
        println!("{:<34} {:>12.2} {:>8} {:>8}", label, secs, rounds, ovfl);
    }
    println!("(With tuning the 4 small buckets formed from the misestimated plan");
    println!(" are regrouped by their measured sizes, so no join round overflows.)");
}

/// The improvement §4.2/§5 propose: "applying filtering techniques to the
/// bucket-forming phases of the Grace and Hybrid join algorithms would
/// significantly increase the performance of these algorithms."
fn bucket_forming_filters() {
    println!("\n== Ablation: filtering the bucket-forming phases (ratio 0.17) ==");
    println!(
        "{:<8} {:>12} {:>16} {:>18} {:>10}",
        "alg", "no filter", "join-phase only", "+ bucket-forming", "pageIOs"
    );
    let w = Workload::scaled(100_000, 10_000);
    let rows = pooled_map(
        "bucket-filter point",
        vec![Algorithm::GraceHash, Algorithm::HybridHash],
        |alg| {
            let plain = SweepBuilder::new(&w).run_one(alg, 0.17);
            let joinf = SweepBuilder::new(&w).filtered(true).run_one(alg, 0.17);
            let formf = SweepBuilder::new(&w)
                .filter_bucket_forming()
                .run_one(alg, 0.17);
            (plain, joinf, formf)
        },
    );
    for (plain, joinf, formf) in rows {
        println!(
            "{:<8} {:>11.2}s {:>15.2}s {:>17.2}s {:>10}",
            plain.algorithm,
            plain.seconds,
            joinf.seconds,
            formf.seconds,
            formf.report.page_ios(),
        );
    }
    println!("(Per-bucket filters built while R is bucket-formed kill non-joining");
    println!(" S tuples before they are spooled — the disk I/O filtering could");
    println!(" never save in the paper's implementation.)");
}

fn run_with_cost(
    cost: CostModel,
    a_rows: &[WisconsinRow],
    b_rows: &[WisconsinRow],
    alg: Algorithm,
    ratio: f64,
    filter: bool,
) -> gamma_core::JoinReport {
    let cfg = MachineConfig {
        disk_nodes: 8,
        diskless_nodes: 0,
        cost,
    };
    let mut machine = Machine::new(cfg);
    let a = load_hashed(&mut machine, "A", a_rows, "unique1");
    let b = load_hashed(&mut machine, "Bprime", b_rows, "unique1");
    let memory = (machine.relation(b).data_bytes as f64 * ratio).ceil() as u64;
    let mut spec = join_abprime(alg, b, a, "unique1", "unique1", memory);
    spec.bit_filter = filter;
    run_join(&mut machine, &spec)
}

/// §4.2 says "obviously using a larger bit filter would further improve the
/// performance of each of these join algorithms" — quantify it.
fn filter_size(a_rows: &[WisconsinRow], b_rows: &[WisconsinRow]) {
    println!("\n== Ablation: bit-filter size (Hybrid & Sort-merge, ratio 1.0) ==");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "filter", "bits/site", "hybrid(s)", "sortmerge(s)"
    );
    let rows = pooled_map(
        "filter-size point",
        vec![0u64, 1024, 2048, 8192, 32768],
        |packet_bytes| {
            let mut cost = CostModel::gamma_1989();
            let filter = packet_bytes > 0;
            if filter {
                cost.filter_packet_bytes = packet_bytes;
            }
            let bits = if filter {
                cost.filter_bits_per_site(8)
            } else {
                0
            };
            let h = run_with_cost(
                cost.clone(),
                a_rows,
                b_rows,
                Algorithm::HybridHash,
                1.0,
                filter,
            );
            let s = run_with_cost(cost, a_rows, b_rows, Algorithm::SortMerge, 1.0, filter);
            (packet_bytes, filter, bits, h.seconds(), s.seconds())
        },
    );
    for (packet_bytes, filter, bits, h_secs, s_secs) in rows {
        println!(
            "{:<12} {:>10} {:>12.2} {:>12.2}",
            if filter {
                format!("{packet_bytes}B")
            } else {
                "off".into()
            },
            bits,
            h_secs,
            s_secs
        );
    }
    println!("(The paper's single 2 KB packet is nearly saturated at one bucket;");
    println!(" growing the filter keeps paying until all non-joining tuples die.)");
}

/// The 10% clearing heuristic of §4.1: how sensitive is Simple hash to the
/// fraction cleared per overflow?
fn clearing_pct(a_rows: &[WisconsinRow], b_rows: &[WisconsinRow]) {
    println!("\n== Ablation: overflow clearing fraction (Simple, ratio 0.5) ==");
    println!(
        "{:<8} {:>12} {:>8} {:>12}",
        "clear%", "response(s)", "passes", "evictions"
    );
    let rows = pooled_map("clearing point", vec![5u64, 10, 20, 35, 50], |pct| {
        let mut cost = CostModel::gamma_1989();
        cost.overflow_clear_pct = pct;
        let r = run_with_cost(cost, a_rows, b_rows, Algorithm::SimpleHash, 0.5, false);
        (
            pct,
            r.seconds(),
            r.overflow_passes,
            r.total.counts.overflow_evictions,
        )
    });
    for (pct, secs, passes, evictions) in rows {
        println!("{:<8} {:>12.2} {:>8} {:>12}", pct, secs, passes, evictions);
    }
    println!("(Clearing little risks repeated clearings; clearing a lot spools");
    println!(" tuples that would have fit. The paper picked 10%.)");
}

/// Speedup: fixed problem, growing machine (a DeWitt88-style study the
/// simulator makes free).
fn speedup(a_rows: &[WisconsinRow], b_rows: &[WisconsinRow]) {
    println!("\n== Ablation: speedup of Hybrid joinABprime (ratio 0.5) ==");
    println!("{:<8} {:>12} {:>9}", "disks", "response(s)", "speedup");
    let rows = pooled_map("speedup point", vec![1usize, 2, 4, 8, 16, 32], |disks| {
        let cfg = MachineConfig {
            disk_nodes: disks,
            diskless_nodes: 0,
            cost: CostModel::gamma_1989(),
        };
        let mut machine = Machine::new(cfg);
        let a = load_hashed(&mut machine, "A", a_rows, "unique1");
        let b = load_hashed(&mut machine, "Bprime", b_rows, "unique1");
        let memory = machine.relation(b).data_bytes / 2;
        let spec = join_abprime(Algorithm::HybridHash, b, a, "unique1", "unique1", memory);
        (disks, run_join(&mut machine, &spec).seconds())
    });
    let base = rows[0].1;
    for (disks, secs) in rows {
        println!("{:<8} {:>12.2} {:>8.2}x", disks, secs, base / secs);
    }
    println!("(Near-linear until per-node work shrinks toward the fixed");
    println!(" scheduling overheads — the classic shared-nothing story.)");
}

/// §5: "offloading joins to remote processors may permit higher throughput
/// by reducing the load at the processors with disks." Estimate the
/// multiuser throughput bound from disk-node busy time: with every query
/// needing the disk nodes, steady-state throughput is capped by
/// 1 / (disk-node busy seconds per query).
fn multiuser() {
    println!("\n== Ablation: multiuser throughput bound, non-HPJA Hybrid (ratio 1.0) ==");
    println!(
        "{:<8} {:>12} {:>12} {:>18}",
        "config", "response(s)", "Dmax(s)", "max queries/hour"
    );
    let w = Workload::scaled(100_000, 10_000);
    let cases = vec![("local", false), ("remote", true)];
    let rows = pooled_map("multiuser point", cases, |(label, remote)| {
        let b = if remote {
            SweepBuilder::new(&w).on("unique2", "unique2").remote()
        } else {
            SweepBuilder::new(&w).on("unique2", "unique2")
        };
        (label, b.run_one(Algorithm::HybridHash, 1.0))
    });
    for (label, p) in rows {
        // Operational analysis over the measured per-node demands: the
        // bottleneck law caps throughput at 1 / D_max.
        let x = p.report.demand.throughput_bound(u32::MAX, 0.0);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>18.0}",
            label,
            p.seconds,
            p.report.demand.bottleneck(),
            x * 3600.0
        );
    }
    println!("(The remote configuration shrinks the disk nodes' per-query demand");
    println!(" — the bottleneck D_max — so the operational bound 1/D_max admits");
    println!(" ~70% more concurrent queries: §5's conjecture, quantified.)");
}

/// How much slack the join operators allocate over the optimizer's per-site
/// estimate decides when integral-ratio runs stop overflowing.
fn headroom(a_rows: &[WisconsinRow], b_rows: &[WisconsinRow]) {
    println!("\n== Ablation: hash-table headroom (Hybrid, ratio 0.125 = 8 buckets) ==");
    println!("{:<10} {:>12} {:>8}", "headroom", "response(s)", "passes");
    let rows = pooled_map("headroom point", vec![0u64, 10, 20, 35, 50], |pct| {
        let mut cost = CostModel::gamma_1989();
        cost.table_headroom_pct = pct;
        let r = run_with_cost(cost, a_rows, b_rows, Algorithm::HybridHash, 0.125, false);
        (pct, r.seconds(), r.overflow_passes)
    });
    for (pct, secs, passes) in rows {
        println!("{:<10} {:>12.2} {:>8}", format!("{pct}%"), secs, passes);
    }
    println!("(Too little slack and hash-distribution variance forces overflow");
    println!(" passes the paper's runs never saw; 35% absorbs the variance.)");
}
