//! Run the full Wisconsin benchmark suite \[BITT83\] on the simulated Gamma
//! machine and print the classic timing table.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin wisconsin            # 100,000 tuples
//! cargo run --release -p gamma-bench --bin wisconsin -- 10000   # classic scale
//! cargo run --release -p gamma-bench --bin wisconsin -- 100000 --remote
//! ```

use gamma_core::{Machine, MachineConfig};
use gamma_wisconsin::WisconsinBenchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|a| a.parse().expect("tuple count"))
        .unwrap_or(100_000);
    let remote = args.iter().any(|a| a == "--remote");
    let cfg = if remote {
        MachineConfig::remote_8_plus_8()
    } else {
        MachineConfig::local_8()
    };
    eprintln!(
        "# Wisconsin benchmark, |A| = {n}, |Bprime| = {}, {} configuration",
        n / 10,
        if remote { "remote" } else { "local" }
    );
    let mut bench = WisconsinBenchmark::new(Machine::new(cfg), n, 1989);
    println!("{:<38} {:>12} {:>10}", "query", "seconds", "tuples");
    for r in bench.run_all() {
        println!("{:<38} {:>12.2} {:>10}", r.name, r.seconds, r.tuples);
    }
}
