//! Trace one `joinABprime` execution.
//!
//! Runs a single join with the structured-event recorder installed and
//! writes two artifacts under `results/`:
//!
//! * `trace-<alg>-r<pct>.json` — Chrome trace-event / Perfetto JSON
//!   (load it at <https://ui.perfetto.dev> or `chrome://tracing`);
//! * `trace-<alg>-r<pct>.txt` — the text critical-path summary, also
//!   printed to stdout.
//!
//! Usage: `trace [hybrid|grace|simple|sort-merge] [ratio] [scale]`
//!
//! `ratio` is memory / |inner relation| (default 0.5); `scale` is the
//! `A` cardinality (default 20000; `Bprime` is a 10% sample of it).

use gamma_bench::tracing::trace_join;
use gamma_bench::Workload;
use gamma_core::query::Algorithm;

fn main() {
    let mut args = std::env::args().skip(1);
    let alg = match args.next().as_deref() {
        None | Some("hybrid") => Algorithm::HybridHash,
        Some("grace") => Algorithm::GraceHash,
        Some("simple") => Algorithm::SimpleHash,
        Some("sort-merge" | "sortmerge") => Algorithm::SortMerge,
        Some(other) => {
            eprintln!("unknown algorithm `{other}` (want hybrid|grace|simple|sort-merge)");
            std::process::exit(2);
        }
    };
    let ratio: f64 = args
        .next()
        .map(|s| s.parse().expect("ratio must be a number"))
        .unwrap_or(0.5);
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let scale: usize = args
        .next()
        .map(|s| s.parse().expect("scale must be an integer"))
        .unwrap_or(20_000);

    let workload = Workload::scaled(scale, scale / 10);
    let run = trace_join(&workload, alg, ratio, false);

    std::fs::create_dir_all("results").expect("create results/");
    let stem = format!(
        "results/trace-{}-r{:02}",
        alg.name(),
        (ratio * 100.0) as u32
    );
    let json_path = format!("{stem}.json");
    let txt_path = format!("{stem}.txt");
    std::fs::write(&json_path, run.perfetto_json()).expect("write trace json");
    let summary = run.summary();
    std::fs::write(&txt_path, &summary).expect("write summary");

    print!("{summary}");
    println!();
    println!("perfetto json: {json_path}");
    println!("summary:       {txt_path}");
}
