//! Flight-record one `joinABprime` execution.
//!
//! Extracts the point's timing plan, replays it through the serve engine
//! with the gamma-prof flight recorder attached, and writes the sampled
//! time series under `results/`:
//!
//! * `prof-<alg>-r<pct>.json` — line-oriented series document (the shape
//!   Gate 6 of the `regress` binary byte-gates);
//! * `prof-<alg>-r<pct>.csv` — one row per tick, for spreadsheets;
//! * `prof-<alg>-r<pct>-perfetto.json` — the point's Perfetto trace with
//!   the recorder's counter tracks merged in (with the default `trace`
//!   feature).
//!
//! Usage: `prof [hybrid|grace|simple|sort-merge] [ratio] [scale]
//!              [--tick-us N] [--out-dir DIR]`
//!
//! Everything is virtual time on a fixed sampling tick — two runs (on any
//! executor or pool size) produce byte-identical artifacts, which CI
//! checks with `cmp`.

use gamma_bench::prof::{artifact_stem, render_csv, render_json, solo_profile, ProfRun, TICK_US};
use gamma_bench::Workload;
use gamma_core::query::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect::<Vec<_>>()
        .into_iter();
    let alg = match positional.next().as_deref() {
        None | Some("hybrid") => Algorithm::HybridHash,
        Some("grace") => Algorithm::GraceHash,
        Some("simple") => Algorithm::SimpleHash,
        Some("sort-merge" | "sortmerge") => Algorithm::SortMerge,
        Some(other) => {
            eprintln!("unknown algorithm `{other}` (want hybrid|grace|simple|sort-merge)");
            std::process::exit(2);
        }
    };
    let ratio: f64 = positional
        .next()
        .map(|s| s.parse().expect("ratio must be a number"))
        .unwrap_or(0.5);
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let scale: usize = positional
        .next()
        .map(|s| s.parse().expect("scale must be an integer"))
        .unwrap_or(20_000);
    let mut tick_us = TICK_US;
    if let Some(i) = args.iter().position(|a| a == "--tick-us") {
        tick_us = args[i + 1].parse().expect("tick-us must be an integer");
    }
    assert!(tick_us > 0, "tick-us must be positive");
    let mut out_dir = String::from("results");
    if let Some(i) = args.iter().position(|a| a == "--out-dir") {
        out_dir = args[i + 1].clone();
    }

    let workload = Workload::scaled(scale, scale / 10);
    let run: ProfRun = solo_profile(&workload, alg, ratio, tick_us);

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let stem = format!("{out_dir}/{}", artifact_stem(alg, ratio));
    let json_path = format!("{stem}.json");
    let csv_path = format!("{stem}.csv");
    std::fs::write(&json_path, render_json(&run)).expect("write prof json");
    std::fs::write(&csv_path, render_csv(&run)).expect("write prof csv");

    println!(
        "prof: {} ratio {ratio} scale {scale}: {} series x {} ticks of {tick_us} us (makespan {} us)",
        run.algorithm,
        run.profile.series.len(),
        run.profile.ticks(),
        run.profile.makespan_us,
    );
    println!("series json:   {json_path}");
    println!("series csv:    {csv_path}");

    #[cfg(feature = "trace")]
    {
        let merged = gamma_bench::prof::merged_perfetto(&workload, alg, ratio, &run.profile);
        let path = format!("{stem}-perfetto.json");
        std::fs::write(&path, merged).expect("write merged perfetto json");
        println!("perfetto json: {path} (trace spans + counter tracks)");
    }
}
