//! Concurrent-serving benchmark: sweep an open-loop arrival rate over
//! the non-HPJA hybrid baseline and locate the saturation knee.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin serve
//! cargo run --release -p gamma-bench --bin serve -- --a-rows 4000 --queries 24
//! cargo run --release -p gamma-bench --bin serve -- --out BENCH_serve.json
//! ```
//!
//! The output JSON carries only virtual-time quantities (no wall-clock),
//! so two runs of the same configuration are byte-identical — CI compares
//! them with `cmp`, and the `regress` binary replays the committed
//! `BENCH_serve.json` under drift/counter gates. Each rate point also
//! passes the concurrent ledger↔metrics reconciliation (with the default
//! `metrics` feature) before its numbers are reported.

use gamma_bench::serve::{
    calibrate_backlog_window, render_json, serve_sweep, ServeSweepConfig, DEFAULT_BACKLOG_WINDOW_US,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeSweepConfig::smoke();
    let mut out_path = String::from("BENCH_serve.json");
    if let Some(i) = args.iter().position(|a| a == "--a-rows") {
        cfg.a_rows = args[i + 1].parse().expect("a-rows must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--queries") {
        cfg.queries = args[i + 1].parse().expect("queries must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--budget-multiplier") {
        cfg.budget_multiplier = args[i + 1]
            .parse()
            .expect("budget-multiplier must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args[i + 1].clone();
    }

    // `--calibrate-backlog` prints the window calibration grid behind
    // `DEFAULT_BACKLOG_WINDOW_US` (see EXPERIMENTS.md) and writes nothing.
    if args.iter().any(|a| a == "--calibrate-backlog") {
        println!(
            "backlog-window calibration: A={} rows, {} queries/cell (default: {} us)",
            cfg.a_rows, cfg.queries, DEFAULT_BACKLOG_WINDOW_US
        );
        for p in calibrate_backlog_window(&cfg) {
            println!(
                "  window {:>10}: load {:>4.2}x  done {:>7.4} q/s  p50 {:>10} us  p99 {:>10} us  mean {:>12.1} us",
                p.window_us
                    .map(|w| format!("{w} us"))
                    .unwrap_or_else(|| "async".into()),
                p.load_fraction,
                p.throughput_qps,
                p.response_p50_us,
                p.response_p99_us,
                p.mean_response_us,
            );
        }
        return;
    }

    let sweep = serve_sweep(&cfg);
    println!(
        "serve: non-HPJA hybrid, A={} rows, {} queries/point, budget {} pages ({}x peak {})",
        cfg.a_rows, cfg.queries, sweep.budget_pages, cfg.budget_multiplier, sweep.peak_pages
    );
    println!(
        "solo response {:>10} us   analytical bound {:.4} q/s",
        sweep.solo_response_us, sweep.bound_qps
    );
    for p in &sweep.points {
        println!(
            "  load {:>4.2}x: offered {:>7.4} q/s  done {:>7.4} q/s  p50 {:>10} us  p99 {:>10} us  util {:>5.3}",
            p.load_fraction,
            p.offered_qps,
            p.throughput_qps,
            p.response_p50_us,
            p.response_p99_us,
            p.peak_utilisation,
        );
    }
    println!(
        "knee {:.4} q/s = {:.1}% of the analytical bound",
        sweep.knee_qps,
        100.0 * sweep.knee_qps / sweep.bound_qps
    );

    std::fs::write(&out_path, render_json(&cfg, &sweep)).expect("write serve json");
    println!("wrote {out_path}");
}
