//! Concurrent-serving benchmark: sweep an open-loop arrival rate over
//! the non-HPJA hybrid baseline and locate the saturation knee.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin serve
//! cargo run --release -p gamma-bench --bin serve -- --a-rows 4000 --queries 24
//! cargo run --release -p gamma-bench --bin serve -- --out BENCH_serve.json
//! ```
//!
//! The output JSON carries only virtual-time quantities (no wall-clock),
//! so two runs of the same configuration are byte-identical — CI compares
//! them with `cmp`, and the `regress` binary replays the committed
//! `BENCH_serve.json` under drift/counter gates. Each rate point also
//! passes the concurrent ledger↔metrics reconciliation (with the default
//! `metrics` feature) before its numbers are reported.
//!
//! `--explain [--load-fraction F] [--out PATH]` serves a single rate
//! point (default: the analytical knee, 1.0×) and prints the per-query
//! EXPLAIN report — admission wait plus per-phase scheduling, cpu, disk,
//! net and queue-wait components, each reconciling exactly to the
//! query's response. The text is deterministic, so CI `cmp`s it across
//! runs and executors.

use gamma_bench::serve::{
    calibrate_backlog_window, profile, render_json, serve_point, serve_sweep, ServeSweepConfig,
    DEFAULT_BACKLOG_WINDOW_US,
};
use gamma_bench::Workload;
use gamma_des::SimTime;
use gamma_sched::{explain, ServeConfig};

/// Print the host-side pool profile when built with `--features
/// hostprof` — wall-clock observability only, never part of the gated
/// artifacts.
fn report_hostprof() {
    #[cfg(feature = "hostprof")]
    print!("{}", gamma_core::exec::pool::hostprof::report());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeSweepConfig::smoke();
    let mut out_path = String::from("BENCH_serve.json");
    if let Some(i) = args.iter().position(|a| a == "--a-rows") {
        cfg.a_rows = args[i + 1].parse().expect("a-rows must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--queries") {
        cfg.queries = args[i + 1].parse().expect("queries must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--budget-multiplier") {
        cfg.budget_multiplier = args[i + 1]
            .parse()
            .expect("budget-multiplier must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args[i + 1].clone();
    }

    // `--explain` serves one rate point and renders the per-query EXPLAIN
    // decomposition instead of sweeping.
    if args.iter().any(|a| a == "--explain") {
        let load_fraction: f64 = args
            .iter()
            .position(|a| a == "--load-fraction")
            .map(|i| args[i + 1].parse().expect("load-fraction must be a number"))
            .unwrap_or(1.0);
        assert!(load_fraction > 0.0, "load-fraction must be positive");
        let workload = Workload::scaled(cfg.a_rows, cfg.a_rows / 10);
        let (plan, report) = profile(&workload);
        let budget_pages = plan.max_peak_pages() * cfg.budget_multiplier.max(1);
        let bound_qps = 1.0 / report.demand.bottleneck();
        let mean_interarrival_us = (1e6 / (bound_qps * load_fraction)).round().max(1.0) as u64;
        let result = serve_point(
            &workload,
            &ServeConfig {
                name: "serve".into(),
                case: 0,
                mean_interarrival: SimTime::from_us(mean_interarrival_us),
                queries: cfg.queries,
                pool_budget_pages: budget_pages,
                backlog_window: cfg.backlog_window,
            },
        );
        let text = explain::render(&result.outcome, result.solo.response);
        print!("{text}");
        if let Some(i) = args.iter().position(|a| a == "--out") {
            let path = &args[i + 1];
            std::fs::write(path, &text).expect("write explain report");
            println!("wrote {path}");
        }
        report_hostprof();
        return;
    }

    // `--calibrate-backlog` prints the window calibration grid behind
    // `DEFAULT_BACKLOG_WINDOW_US` (see EXPERIMENTS.md) and writes nothing.
    if args.iter().any(|a| a == "--calibrate-backlog") {
        println!(
            "backlog-window calibration: A={} rows, {} queries/cell (default: {} us)",
            cfg.a_rows, cfg.queries, DEFAULT_BACKLOG_WINDOW_US
        );
        for p in calibrate_backlog_window(&cfg) {
            println!(
                "  window {:>10}: load {:>4.2}x  done {:>7.4} q/s  p50 {:>10} us  p99 {:>10} us  mean {:>12.1} us",
                p.window_us
                    .map(|w| format!("{w} us"))
                    .unwrap_or_else(|| "async".into()),
                p.load_fraction,
                p.throughput_qps,
                p.response_p50_us,
                p.response_p99_us,
                p.mean_response_us,
            );
        }
        return;
    }

    let sweep = serve_sweep(&cfg);
    println!(
        "serve: non-HPJA hybrid, A={} rows, {} queries/point, budget {} pages ({}x peak {})",
        cfg.a_rows, cfg.queries, sweep.budget_pages, cfg.budget_multiplier, sweep.peak_pages
    );
    println!(
        "solo response {:>10} us   analytical bound {:.4} q/s",
        sweep.solo_response_us, sweep.bound_qps
    );
    for p in &sweep.points {
        println!(
            "  load {:>4.2}x: offered {:>7.4} q/s  done {:>7.4} q/s  p50 {:>10} us  p99 {:>10} us  util {:>5.3}",
            p.load_fraction,
            p.offered_qps,
            p.throughput_qps,
            p.response_p50_us,
            p.response_p99_us,
            p.peak_utilisation,
        );
    }
    println!(
        "knee {:.4} q/s = {:.1}% of the analytical bound",
        sweep.knee_qps,
        100.0 * sweep.knee_qps / sweep.bound_qps
    );

    std::fs::write(&out_path, render_json(&cfg, &sweep)).expect("write serve json");
    println!("wrote {out_path}");
    report_hostprof();
}
