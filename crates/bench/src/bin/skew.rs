//! Skew × memory-ratio cliff benchmark.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin skew
//! cargo run --release -p gamma-bench --bin skew -- --a-rows 4000 --bprime-rows 400
//! cargo run --release -p gamma-bench --bin skew -- --out BENCH_skew.json
//! ```
//!
//! Measures Hybrid under the Figure 7 "optimistic" bucket policy across a
//! skew-level × memory-ratio grid, once with the legacy all-or-nothing
//! overflow machinery and once with the robust path (skew-aware
//! split-table refinement + dynamic spill/restore). The output JSON
//! carries only virtual-time quantities, so two runs of the same
//! configuration are byte-identical — CI compares serial vs pooled builds
//! with `cmp`, and the `regress` binary replays the committed
//! `BENCH_skew.json` under drift/counter gates.

use gamma_bench::skew::{render_json, skew_sweep, SkewSweepConfig, MODES, SKEW_LEVELS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SkewSweepConfig::smoke();
    let mut out_path = String::from("BENCH_skew.json");
    if let Some(i) = args.iter().position(|a| a == "--a-rows") {
        cfg.a_rows = args[i + 1].parse().expect("a-rows must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--bprime-rows") {
        cfg.bprime_rows = args[i + 1].parse().expect("bprime-rows must be an integer");
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args[i + 1].clone();
    }

    println!(
        "skew: hybrid/optimistic, A={} rows, Bprime={} rows, ratios {:?}",
        cfg.a_rows, cfg.bprime_rows, cfg.ratios
    );
    let sweep = skew_sweep(&cfg);
    for skew in SKEW_LEVELS {
        for mode in MODES {
            println!("  {skew}/{mode}:");
            for p in sweep.series(skew, mode) {
                println!(
                    "    ratio {:>4}: {:>12} virtual-us  {} passes  {:>4} spilled  {:>4} restored  {} buckets{}",
                    p.memory_ratio,
                    p.response_virtual_us,
                    p.overflow_passes,
                    p.pages_spilled,
                    p.pages_restored,
                    p.buckets,
                    if p.bnl { "  [bnl]" } else { "" },
                );
            }
        }
    }

    std::fs::write(&out_path, render_json(&cfg, &sweep)).expect("write skew json");
    println!("wrote {out_path}");
}
