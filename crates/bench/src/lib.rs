//! # gamma-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! Each experiment builds the Wisconsin workload, loads it the way the
//! paper did (hash-declustered on `unique1`, or range-partitioned on the
//! join attribute for the skew experiments), sweeps memory availability,
//! and prints the same series the paper plots. Every join run is validated
//! against the oracle before its time is reported.
//!
//! Run `cargo run --release -p gamma-bench --bin figures -- all` to
//! regenerate everything (see `EXPERIMENTS.md` for the recorded output).

pub mod alloc;
pub mod experiments;
#[cfg(feature = "metrics")]
pub mod metrics;
pub mod microbench;
pub mod plot;
pub mod prof;
pub mod regress;
pub mod serve;
pub mod skew;
pub mod sweep;
#[cfg(feature = "trace")]
pub mod tracing;

pub use sweep::{bench_pool, pooled_map, pooled_map_on, ExperimentPoint, SweepBuilder, Workload};
