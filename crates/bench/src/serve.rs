//! Arrival-rate sweeps over the concurrent serve engine.
//!
//! The experiment the `throughput` module only *predicts*: sweep the
//! offered load of an open-loop query stream across fractions of the
//! analytical bound `1 / D_max`, serve each rate point with
//! `gamma_sched::serve`, and measure where completed-query throughput
//! stops following the offered rate — the saturation knee. The baseline
//! workload is the non-HPJA hybrid join (`unique2 ⋈ unique2` over
//! `joinABprime`), the paper's general-case query.
//!
//! Everything is virtual time over deterministic arrivals, so a sweep is
//! byte-reproducible; `BENCH_serve.json` doubles as a perf baseline that
//! the `regress` binary replays under drift/counter gates.

use gamma_core::query::Algorithm;
use gamma_core::JoinReport;
use gamma_des::SimTime;
use gamma_sched::{serve, QueryPlan, ServeConfig, ServeResult};

use crate::sweep::{pooled_map, SweepBuilder, Workload};

/// Offered-load fractions of the analytical bound swept by default: well
/// below the knee, around it, and into overload.
pub const DEFAULT_LOAD_FRACTIONS: [f64; 6] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.4];

/// Ratio of the per-node page budget to one query's peak footprint —
/// i.e. the admission multiprogramming level. Three concurrent queries
/// keep the bottleneck device saturated through phase transitions
/// without collapsing response times; the committed `BENCH_serve.json`
/// locks the resulting knee.
pub const DEFAULT_BUDGET_MULTIPLIER: usize = 3;

/// Calibrated mid-phase back-pressure window, µs (see
/// [`calibrate_backlog_window`]).
///
/// Method (grid recorded in `EXPERIMENTS.md`): at the smoke scale, serve
/// the knee (1.0×) and overload (1.4×) rate points over identical
/// arrival streams once per candidate window in
/// `BACKLOG_WINDOW_CANDIDATES_US` plus fully-asynchronous `None`, and
/// pick the tightest window whose cells are indistinguishable from the
/// asynchronous ceiling. In this engine stalling the CPU behind a
/// backlogged device only *extends* convoys — every tighter window costs
/// both throughput (−1.2% at the knee for `0`) and tail response (+9%
/// p99) — so the window is a backlog-*bounding* knob, not a latency
/// optimisation: `160_000` µs never engages at smoke-scale loads (its
/// cells match `None` exactly) yet still converts any pathological
/// device wait beyond it into CPU stall instead of unbounded queue
/// growth.
///
/// `ServeSweepConfig::smoke()` deliberately stays `None`: the committed
/// `BENCH_serve.json` baseline and the solo-equivalence property (an
/// unloaded serve byte-identical to the solo replay) are defined for
/// fully-asynchronous devices, and `None` must remain reachable for
/// both. Opt into the calibrated bound with
/// `backlog_window: Some(SimTime::from_us(DEFAULT_BACKLOG_WINDOW_US))`.
pub const DEFAULT_BACKLOG_WINDOW_US: u64 = 160_000;

/// Candidate windows swept by [`calibrate_backlog_window`], µs.
pub const BACKLOG_WINDOW_CANDIDATES_US: [u64; 4] = [0, 10_000, 40_000, 160_000];

/// One serve experiment configuration.
#[derive(Debug, Clone)]
pub struct ServeSweepConfig {
    /// `A` cardinality (`Bprime` is a 10% sample).
    pub a_rows: usize,
    /// Queries per rate point.
    pub queries: u32,
    /// Offered load as fractions of the analytical throughput bound.
    pub load_fractions: Vec<f64>,
    /// Admission budget = multiplier × one query's peak page footprint.
    pub budget_multiplier: usize,
    /// Mid-phase CPU back-pressure window for the engine.
    pub backlog_window: Option<SimTime>,
}

impl ServeSweepConfig {
    /// The smoke-scale default used by tests, CI and the committed
    /// baseline.
    pub fn smoke() -> Self {
        ServeSweepConfig {
            a_rows: 4_000,
            queries: 24,
            load_fractions: DEFAULT_LOAD_FRACTIONS.to_vec(),
            budget_multiplier: DEFAULT_BUDGET_MULTIPLIER,
            backlog_window: None,
        }
    }
}

/// One measured rate point.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Index within the sweep (also the arrival-stream case seed).
    pub rate_index: usize,
    /// Offered load as a fraction of the analytical bound.
    pub load_fraction: f64,
    /// Mean inter-arrival time fed to the generator.
    pub mean_interarrival_us: u64,
    /// Offered rate in queries/second (1e6 / mean inter-arrival µs).
    pub offered_qps: f64,
    /// Queries completed (always all of them — open loop, run to drain).
    pub completed: u64,
    /// Virtual time of the last completion.
    pub makespan_us: u64,
    /// Completed-query throughput in queries/second.
    pub throughput_qps: f64,
    /// Exact nearest-rank response percentiles, µs.
    pub response_p50_us: u64,
    /// 99th percentile response, µs.
    pub response_p99_us: u64,
    /// 99.9th percentile response, µs.
    pub response_p999_us: u64,
    /// Mean response, µs.
    pub mean_response_us: f64,
    /// Total time queries spent queued at admission control, µs.
    pub admission_wait_total_us: u64,
    /// Highest per-device utilisation over the run (busy / makespan).
    pub peak_utilisation: f64,
}

/// A full sweep: the solo profile, the analytical bound, every measured
/// rate point and the knee they locate.
#[derive(Debug)]
pub struct ServeSweep {
    /// Solo (single-user) response of the template query, µs.
    pub solo_response_us: u64,
    /// Analytical throughput bound `1 / D_max`, queries/second.
    pub bound_qps: f64,
    /// Measured saturation knee: the best throughput any rate point
    /// sustained.
    pub knee_qps: f64,
    /// Per-node admission budget used, in pool pages.
    pub budget_pages: usize,
    /// One query's peak per-node page footprint.
    pub peak_pages: usize,
    /// The measured points, one per load fraction.
    pub points: Vec<ServePoint>,
}

/// Build the non-HPJA hybrid baseline for one rate point.
fn builder(workload: &Workload) -> SweepBuilder<'_> {
    SweepBuilder::new(workload).on("unique2", "unique2")
}

/// Profile the template query once: plan (footprint), report (demand).
pub fn profile(workload: &Workload) -> (QueryPlan, JoinReport) {
    let (mut machine, spec) = builder(workload).prepare(Algorithm::HybridHash, 1.0);
    let (plan, report) = gamma_sched::extract(&mut machine, &spec);
    let expect = workload.expect("unique2", "unique2");
    assert_eq!(report.result_tuples, expect.tuples, "serve template wrong");
    assert_eq!(
        report.result_checksum, expect.checksum,
        "serve template wrong"
    );
    (plan, report)
}

/// Serve one rate point on a freshly loaded machine.
///
/// When the `metrics` feature is on, the whole point (all physical
/// instance runs) is captured in one registry and audited against the
/// integer sum of the per-instance ledgers — the concurrent
/// generalization of the single-query reconciliation.
pub fn serve_point(workload: &Workload, cfg: &ServeConfig) -> ServeResult {
    let (mut machine, spec) = builder(workload).prepare(Algorithm::HybridHash, 1.0);
    #[cfg(feature = "metrics")]
    {
        let prev = gamma_metrics::install(gamma_metrics::Registry::new());
        let result = serve(&mut machine, &spec, cfg);
        let registry = gamma_metrics::take().expect("registry installed above");
        if let Some(p) = prev {
            gamma_metrics::install(p);
        }
        // The audit reuses the single-query reconciliation against a
        // report whose aggregate ledger is the integer sum over instances.
        let mut aggregate = result.solo.clone();
        aggregate.total = result.total_usage();
        let errs = crate::metrics::reconcile(&registry, &aggregate);
        assert!(
            errs.is_empty(),
            "serve-point metrics failed ledger reconciliation:\n{}",
            errs.join("\n")
        );
        result
    }
    #[cfg(not(feature = "metrics"))]
    serve(&mut machine, &spec, cfg)
}

/// Run a full arrival-rate sweep.
pub fn serve_sweep(cfg: &ServeSweepConfig) -> ServeSweep {
    let workload = Workload::scaled(cfg.a_rows, cfg.a_rows / 10);
    let (plan, report) = profile(&workload);
    let peak_pages = plan.max_peak_pages();
    let budget_pages = peak_pages * cfg.budget_multiplier.max(1);
    let bound_qps = 1.0 / report.demand.bottleneck();

    // Each rate point serves its own freshly loaded machine, so the
    // points are independent; the pool (when active) runs them
    // concurrently and `pooled_map` gathers them in rate order.
    let cases: Vec<(usize, f64)> = cfg.load_fractions.iter().copied().enumerate().collect();
    let points = pooled_map("serve point", cases, |(rate_index, load_fraction)| {
        let offered = bound_qps * load_fraction;
        let mean_interarrival_us = (1e6 / offered).round().max(1.0) as u64;
        let result = serve_point(
            &workload,
            &ServeConfig {
                name: "serve".into(),
                case: rate_index as u64,
                mean_interarrival: SimTime::from_us(mean_interarrival_us),
                queries: cfg.queries,
                pool_budget_pages: budget_pages,
                backlog_window: cfg.backlog_window,
            },
        );
        let out = &result.outcome;
        let admission_wait_total_us = out
            .queries
            .iter()
            .map(|q| q.admission_wait().unwrap_or(SimTime::ZERO).as_us())
            .sum();
        ServePoint {
            rate_index,
            load_fraction,
            mean_interarrival_us,
            offered_qps: 1e6 / mean_interarrival_us as f64,
            completed: out.completed() as u64,
            makespan_us: out.makespan.as_us(),
            throughput_qps: out.throughput_qps(),
            response_p50_us: out.response_percentile(1, 2).unwrap_or(0),
            response_p99_us: out.response_percentile(99, 100).unwrap_or(0),
            response_p999_us: out.response_percentile(999, 1000).unwrap_or(0),
            mean_response_us: out.mean_response_us().unwrap_or(0.0),
            admission_wait_total_us,
            peak_utilisation: out.peak_device_utilisation(),
        }
    });

    let knee_qps = points.iter().map(|p| p.throughput_qps).fold(0.0, f64::max);
    ServeSweep {
        solo_response_us: report.response.as_us(),
        bound_qps,
        knee_qps,
        budget_pages,
        peak_pages,
        points,
    }
}

/// One measured calibration cell: a (window, load) pair served once.
#[derive(Debug, Clone)]
pub struct BacklogCalPoint {
    /// Back-pressure window, µs (`None` = fully asynchronous).
    pub window_us: Option<u64>,
    /// Offered load as a fraction of the analytical bound.
    pub load_fraction: f64,
    /// Completed-query throughput, queries/second.
    pub throughput_qps: f64,
    /// Median response, µs.
    pub response_p50_us: u64,
    /// 99th percentile response, µs.
    pub response_p99_us: u64,
    /// Mean response, µs.
    pub mean_response_us: f64,
}

/// The calibration behind [`DEFAULT_BACKLOG_WINDOW_US`]: serve the knee
/// and overload rate points once per candidate window (plus `None`) and
/// report throughput and response so the trade-off is visible. Cells are
/// dispatched on the bench pool when one is active; the grid is
/// deterministic, so reruns reproduce `EXPERIMENTS.md` exactly.
pub fn calibrate_backlog_window(cfg: &ServeSweepConfig) -> Vec<BacklogCalPoint> {
    let workload = Workload::scaled(cfg.a_rows, cfg.a_rows / 10);
    let (plan, report) = profile(&workload);
    let budget_pages = plan.max_peak_pages() * cfg.budget_multiplier.max(1);
    let bound_qps = 1.0 / report.demand.bottleneck();

    let mut windows: Vec<Option<u64>> = vec![None];
    windows.extend(BACKLOG_WINDOW_CANDIDATES_US.iter().copied().map(Some));
    // Cells at the same load share an arrival-stream seed, so the window
    // comparison is over identical offered traffic.
    let mut cells: Vec<(usize, Option<u64>, f64)> = Vec::new();
    for w in windows {
        for (li, &load) in [1.0, 1.4].iter().enumerate() {
            cells.push((li, w, load));
        }
    }
    pooled_map("backlog cell", cells, |(case, window_us, load_fraction)| {
        let mean_interarrival_us = (1e6 / (bound_qps * load_fraction)).round().max(1.0) as u64;
        let result = serve_point(
            &workload,
            &ServeConfig {
                name: "backlog-cal".into(),
                case: case as u64,
                mean_interarrival: SimTime::from_us(mean_interarrival_us),
                queries: cfg.queries,
                pool_budget_pages: budget_pages,
                backlog_window: window_us.map(SimTime::from_us),
            },
        );
        let out = &result.outcome;
        BacklogCalPoint {
            window_us,
            load_fraction,
            throughput_qps: out.throughput_qps(),
            response_p50_us: out.response_percentile(1, 2).unwrap_or(0),
            response_p99_us: out.response_percentile(99, 100).unwrap_or(0),
            mean_response_us: out.mean_response_us().unwrap_or(0.0),
        }
    })
}

/// Render a sweep as the hand-rolled line-oriented `BENCH_serve.json`
/// document (one point object per line; no wall-clock fields, so two
/// identical sweeps produce byte-identical files).
pub fn render_json(cfg: &ServeSweepConfig, sweep: &ServeSweep) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"serve\",\n  \"a_rows\": {},\n  \"queries\": {},\n  \"budget_multiplier\": {},\n  \"budget_pages\": {},\n  \"peak_pages\": {},\n  \"solo_response_us\": {},\n  \"bound_qps\": {:.6},\n  \"knee_qps\": {:.6},\n",
        cfg.a_rows,
        cfg.queries,
        cfg.budget_multiplier,
        sweep.budget_pages,
        sweep.peak_pages,
        sweep.solo_response_us,
        sweep.bound_qps,
        sweep.knee_qps,
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in sweep.points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rate_index\": {}, \"load_fraction\": {}, \"mean_interarrival_us\": {}, \"offered_qps\": {:.6}, \"completed\": {}, \"makespan_us\": {}, \"throughput_qps\": {:.6}, \"response_p50_us\": {}, \"response_p99_us\": {}, \"response_p999_us\": {}, \"mean_response_us\": {:.3}, \"admission_wait_total_us\": {}, \"peak_utilisation\": {:.6}}}{}\n",
            p.rate_index,
            p.load_fraction,
            p.mean_interarrival_us,
            p.offered_qps,
            p.completed,
            p.makespan_us,
            p.throughput_qps,
            p.response_p50_us,
            p.response_p99_us,
            p.response_p999_us,
            p.mean_response_us,
            p.admission_wait_total_us,
            p.peak_utilisation,
            if i + 1 < sweep.points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_finds_a_knee_under_the_bound() {
        let mut cfg = ServeSweepConfig::smoke();
        cfg.a_rows = 2_000; // keep the test quick
        cfg.queries = 12;
        let sweep = serve_sweep(&cfg);
        assert_eq!(sweep.points.len(), cfg.load_fractions.len());
        for p in &sweep.points {
            assert_eq!(p.completed, u64::from(cfg.queries));
            assert!(p.response_p50_us >= sweep.solo_response_us);
            assert!(p.response_p99_us >= p.response_p50_us);
            assert!(p.response_p999_us >= p.response_p99_us);
        }
        // The knee honours the operational bound and sits near it: the
        // acceptance band for the non-HPJA hybrid baseline.
        assert!(
            sweep.knee_qps <= sweep.bound_qps * (1.0 + 1e-9),
            "knee {} exceeds analytical bound {}",
            sweep.knee_qps,
            sweep.bound_qps
        );
        assert!(
            sweep.knee_qps >= 0.75 * sweep.bound_qps,
            "knee {} is below 75% of the analytical bound {}",
            sweep.knee_qps,
            sweep.bound_qps
        );
        // Below the knee the stream keeps up: throughput tracks the
        // offered rate at the lightest load.
        let light = &sweep.points[0];
        assert!(light.throughput_qps > 0.0);
        // Overload shows up as admission queueing at the heaviest point.
        let heavy = sweep.points.last().unwrap();
        assert!(
            heavy.admission_wait_total_us > 0,
            "past the bound, admission control must be queueing"
        );
    }

    #[test]
    fn sweeps_are_byte_deterministic() {
        let mut cfg = ServeSweepConfig::smoke();
        cfg.a_rows = 1_000;
        cfg.queries = 6;
        cfg.load_fractions = vec![0.5, 1.2];
        let a = render_json(&cfg, &serve_sweep(&cfg));
        let b = render_json(&cfg, &serve_sweep(&cfg));
        assert_eq!(a, b);
    }
}
