//! Traced join runs.
//!
//! Wraps one `joinABprime` execution in a [`TraceSink`] install/take pair
//! so callers (the `trace` binary and the determinism tests) get the full
//! event stream alongside the normal [`JoinReport`]. The simulator is
//! deterministic, so tracing the same point twice yields byte-identical
//! exports.

use gamma_core::query::Algorithm;
use gamma_core::JoinReport;
use gamma_trace::{perfetto, summary, TraceSink};

use crate::sweep::{SweepBuilder, Workload};

/// A join run captured with tracing on.
pub struct TracedRun {
    /// The usual join report (validated against the oracle).
    pub report: JoinReport,
    /// The recorded event stream.
    pub sink: TraceSink,
}

impl TracedRun {
    /// Chrome trace-event / Perfetto JSON for this run.
    pub fn perfetto_json(&self) -> String {
        perfetto::to_json(&self.sink)
    }

    /// Text critical-path summary for this run.
    pub fn summary(&self) -> String {
        summary::critical_path(&self.sink)
    }
}

/// Run one `joinABprime` point with a fresh sink installed.
///
/// # Panics
/// Panics if the join result fails oracle validation.
pub fn trace_join(
    workload: &Workload,
    algorithm: Algorithm,
    ratio: f64,
    filtered: bool,
) -> TracedRun {
    trace_join_with(
        workload,
        algorithm,
        ratio,
        filtered,
        gamma_core::ExecConfig::auto(),
    )
}

/// [`trace_join`] on an explicit executor (serial-vs-pooled trace
/// comparisons pin one machine to each).
pub fn trace_join_with(
    workload: &Workload,
    algorithm: Algorithm,
    ratio: f64,
    filtered: bool,
    exec: gamma_core::ExecConfig,
) -> TracedRun {
    let builder = SweepBuilder::new(workload).filtered(filtered).exec(exec);
    // Install the sink only after the workload is loaded: load-time I/O is
    // not part of the measured query and must not appear in the trace.
    let (mut machine, spec) = builder.prepare(algorithm, ratio);
    let prev = gamma_trace::install(TraceSink::default());
    let point = builder.measure(&mut machine, &spec, algorithm, ratio);
    let sink = gamma_trace::take().expect("sink installed above");
    if let Some(p) = prev {
        gamma_trace::install(p);
    }
    TracedRun {
        report: point.report,
        sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_run_records_and_places_phases() {
        let w = Workload::scaled(2_000, 200);
        let run = trace_join(&w, Algorithm::HybridHash, 0.5, false);
        assert_eq!(run.report.result_tuples, 200);
        assert!(!run.sink.is_empty(), "hooks must have fired");
        assert_eq!(run.sink.phases.len(), run.report.phases.len());
        for ph in &run.sink.phases {
            assert!(ph.start_us.is_some(), "phase {} not replayed", ph.name);
        }
        // The trace's clock agrees with the report's response time.
        assert_eq!(run.sink.response_us(), run.report.response.as_us());
    }
}
