//! Virtual-time performance-regression gate.
//!
//! The simulator is deterministic, so the committed `BENCH_joinabprime.json`
//! doubles as a perf baseline: any code change that moves a point's
//! `response_virtual_us` is a *modelled* performance change, not noise, and
//! must be either intentional (regenerate the baseline) or a regression.
//! This module holds the pure pieces of the gate — parsing the baseline's
//! hand-rolled JSON, comparing point sets under a tolerance, and diffing
//! metric snapshots line by line — so they are unit-testable without
//! rerunning joins. The `regress` binary wires them to fresh runs.
//! The committed `BENCH_serve.json` (concurrent-serving sweep) gets the
//! same treatment: virtual-time quantities are drift-gated, deterministic
//! identity fields are exact-gated.
//!
//! Wall-clock fields (`wall_ms`, `speedup`) are never gated: they measure
//! the host, not the model.

/// One benchmark point parsed from `BENCH_joinabprime.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Algorithm name as printed by the report (e.g. `"hybrid"`).
    pub algorithm: String,
    /// Memory / |inner relation| ratio.
    pub memory_ratio: f64,
    /// Simulated end-to-end response time.
    pub response_virtual_us: u64,
    /// Peak buffer-pool residency over all nodes (absent in baselines
    /// recorded before the metrics registry existed, or without it built).
    pub peak_pool_pages: Option<u64>,
    /// Total packets placed on the ring.
    pub packets: Option<u64>,
    /// Short-circuited messages / (short-circuited + ring packets).
    pub short_circuit_ratio: Option<f64>,
}

/// Extract the raw value token for `key` from one JSON object line written
/// by our own benchmark serializers (`"key": value` pairs, one object per
/// line; values never contain `,` or `}` — not a general JSON parser).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    match field(line, key)? {
        "null" => None,
        v => v.parse().ok(),
    }
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let v = field(line, key)?;
    Some(v.trim_matches('"').to_string())
}

/// Parse every point object out of a `BENCH_joinabprime.json` document.
/// Lines that don't contain an `algorithm` key (the envelope) are skipped.
pub fn parse_bench_points(json: &str) -> Vec<BenchPoint> {
    json.lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"algorithm\""))
        .filter_map(|l| {
            Some(BenchPoint {
                algorithm: str_field(l, "algorithm")?,
                memory_ratio: num_field(l, "memory_ratio")?,
                response_virtual_us: num_field(l, "response_virtual_us")? as u64,
                peak_pool_pages: num_field(l, "peak_pool_pages").map(|v| v as u64),
                packets: num_field(l, "packets").map(|v| v as u64),
                short_circuit_ratio: num_field(l, "short_circuit_ratio"),
            })
        })
        .collect()
}

/// Parse the envelope's `scale` field (defaults to 1.0 when absent).
pub fn parse_scale(json: &str) -> f64 {
    json.lines()
        .find_map(|l| num_field(l, "scale"))
        .unwrap_or(1.0)
}

/// Compare a fresh point set against the baseline. Virtual response times
/// may drift up to `tol_pct` percent (to leave room for deliberate cost
/// recalibrations guarded by their own tests); the deterministic event
/// counters (`packets`, `peak_pool_pages`) must match exactly when both
/// sides recorded them. Missing or extra points are failures. Returns every
/// violation found (empty ⇒ the gate passes).
pub fn compare_points(baseline: &[BenchPoint], fresh: &[BenchPoint], tol_pct: f64) -> Vec<String> {
    let mut errs = Vec::new();
    for b in baseline {
        let id = format!("{} @ ratio {}", b.algorithm, b.memory_ratio);
        let Some(f) = fresh
            .iter()
            .find(|f| f.algorithm == b.algorithm && f.memory_ratio == b.memory_ratio)
        else {
            errs.push(format!("{id}: present in baseline, missing from fresh run"));
            continue;
        };
        let (old, new) = (b.response_virtual_us, f.response_virtual_us);
        if old != new {
            let drift = (new.abs_diff(old)) as f64 * 100.0 / old as f64;
            if drift > tol_pct {
                errs.push(format!(
                    "{id}: response_virtual_us drifted {drift:.3}% ({old} -> {new}, tolerance {tol_pct}%)"
                ));
            }
        }
        if let (Some(old), Some(new)) = (b.packets, f.packets) {
            if old != new {
                errs.push(format!("{id}: packets changed ({old} -> {new})"));
            }
        }
        if let (Some(old), Some(new)) = (b.peak_pool_pages, f.peak_pool_pages) {
            if old != new {
                errs.push(format!("{id}: peak_pool_pages changed ({old} -> {new})"));
            }
        }
    }
    for f in fresh {
        if !baseline
            .iter()
            .any(|b| b.algorithm == f.algorithm && b.memory_ratio == f.memory_ratio)
        {
            errs.push(format!(
                "{} @ ratio {}: in fresh run but not in baseline",
                f.algorithm, f.memory_ratio
            ));
        }
    }
    errs
}

/// One serve rate point parsed from `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchPoint {
    /// Index within the sweep (identity key; also the arrival seed case).
    pub rate_index: u64,
    /// Offered load as a fraction of the analytical bound.
    pub load_fraction: f64,
    /// Mean inter-arrival time handed to the generator (exact-gated).
    pub mean_interarrival_us: u64,
    /// Queries completed (exact-gated).
    pub completed: u64,
    /// Virtual makespan (drift-gated).
    pub makespan_us: u64,
    /// Exact nearest-rank response percentiles (drift-gated).
    pub response_p50_us: u64,
    /// 99th percentile response (drift-gated).
    pub response_p99_us: u64,
    /// 99.9th percentile response (drift-gated).
    pub response_p999_us: u64,
    /// Total admission-queue wait (drift-gated).
    pub admission_wait_total_us: u64,
}

/// Parse every rate-point object out of a `BENCH_serve.json` document.
pub fn parse_serve_points(json: &str) -> Vec<ServeBenchPoint> {
    json.lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"rate_index\""))
        .filter_map(|l| {
            Some(ServeBenchPoint {
                rate_index: num_field(l, "rate_index")? as u64,
                load_fraction: num_field(l, "load_fraction")?,
                mean_interarrival_us: num_field(l, "mean_interarrival_us")? as u64,
                completed: num_field(l, "completed")? as u64,
                makespan_us: num_field(l, "makespan_us")? as u64,
                response_p50_us: num_field(l, "response_p50_us")? as u64,
                response_p99_us: num_field(l, "response_p99_us")? as u64,
                response_p999_us: num_field(l, "response_p999_us")? as u64,
                admission_wait_total_us: num_field(l, "admission_wait_total_us")? as u64,
            })
        })
        .collect()
}

/// Parse the serve envelope: `(a_rows, queries, budget_multiplier)`.
pub fn parse_serve_envelope(json: &str) -> Option<(usize, u32, usize)> {
    let find = |key: &str| json.lines().find_map(|l| num_field(l, key));
    Some((
        find("a_rows")? as usize,
        find("queries")? as u32,
        find("budget_multiplier")? as usize,
    ))
}

/// Compare a fresh serve sweep against the committed baseline, point by
/// point (keyed on `rate_index`). Virtual-time quantities (makespan,
/// response percentiles, admission wait) may drift up to `tol_pct`
/// percent; the deterministic identity fields (`mean_interarrival_us`,
/// `completed`) must match exactly. Missing or extra points are failures.
pub fn compare_serve_points(
    baseline: &[ServeBenchPoint],
    fresh: &[ServeBenchPoint],
    tol_pct: f64,
) -> Vec<String> {
    fn drift(id: &str, what: &str, old: u64, new: u64, tol_pct: f64) -> Option<String> {
        if old == new {
            return None;
        }
        // Relative to max(old, 1) so a baseline zero still gates.
        let pct = new.abs_diff(old) as f64 * 100.0 / (old.max(1)) as f64;
        (pct > tol_pct).then(|| {
            format!("{id}: {what} drifted {pct:.3}% ({old} -> {new}, tolerance {tol_pct}%)")
        })
    }
    let mut errs = Vec::new();
    for b in baseline {
        let id = format!("serve point {}", b.rate_index);
        let Some(f) = fresh.iter().find(|f| f.rate_index == b.rate_index) else {
            errs.push(format!("{id}: present in baseline, missing from fresh run"));
            continue;
        };
        if b.mean_interarrival_us != f.mean_interarrival_us {
            errs.push(format!(
                "{id}: mean_interarrival_us changed ({} -> {}) — the offered rate moved",
                b.mean_interarrival_us, f.mean_interarrival_us
            ));
        }
        if b.completed != f.completed {
            errs.push(format!(
                "{id}: completed changed ({} -> {})",
                b.completed, f.completed
            ));
        }
        let checks = [
            ("makespan_us", b.makespan_us, f.makespan_us),
            ("response_p50_us", b.response_p50_us, f.response_p50_us),
            ("response_p99_us", b.response_p99_us, f.response_p99_us),
            ("response_p999_us", b.response_p999_us, f.response_p999_us),
            (
                "admission_wait_total_us",
                b.admission_wait_total_us,
                f.admission_wait_total_us,
            ),
        ];
        errs.extend(
            checks
                .into_iter()
                .filter_map(|(what, old, new)| drift(&id, what, old, new, tol_pct)),
        );
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.rate_index == f.rate_index) {
            errs.push(format!(
                "serve point {}: in fresh run but not in baseline",
                f.rate_index
            ));
        }
    }
    errs
}

/// One skew-grid point parsed from `BENCH_skew.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewBenchPoint {
    /// Skew level (`uniform` / `nu` / `sharp`); identity key with `mode`
    /// and `memory_ratio`.
    pub skew: String,
    /// Machinery (`legacy` / `robust`).
    pub mode: String,
    /// Memory / |inner| ratio.
    pub memory_ratio: f64,
    /// Simulated response time (drift-gated).
    pub response_virtual_us: u64,
    /// Classic re-spray passes (exact-gated).
    pub overflow_passes: u64,
    /// Pages left spilled by the dynamic path (exact-gated).
    pub pages_spilled: u64,
    /// Pages restored into table slack (exact-gated).
    pub pages_restored: u64,
    /// Bucket count (exact-gated).
    pub buckets: u64,
    /// Result cardinality (exact-gated).
    pub result_tuples: u64,
}

/// Parse every grid point out of a `BENCH_skew.json` document. Keyed on
/// the `skew` field, which neither the joinabprime nor the serve documents
/// carry — the three parsers ignore each other's points.
pub fn parse_skew_points(json: &str) -> Vec<SkewBenchPoint> {
    json.lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"skew\""))
        .filter_map(|l| {
            Some(SkewBenchPoint {
                skew: str_field(l, "skew")?,
                mode: str_field(l, "mode")?,
                memory_ratio: num_field(l, "memory_ratio")?,
                response_virtual_us: num_field(l, "response_virtual_us")? as u64,
                overflow_passes: num_field(l, "overflow_passes")? as u64,
                pages_spilled: num_field(l, "pages_spilled")? as u64,
                pages_restored: num_field(l, "pages_restored")? as u64,
                buckets: num_field(l, "buckets")? as u64,
                result_tuples: num_field(l, "result_tuples")? as u64,
            })
        })
        .collect()
}

/// Parse the skew envelope: `(a_rows, bprime_rows)`.
pub fn parse_skew_envelope(json: &str) -> Option<(usize, usize)> {
    let find = |key: &str| json.lines().find_map(|l| num_field(l, key));
    Some((find("a_rows")? as usize, find("bprime_rows")? as usize))
}

/// Compare a fresh skew grid against the committed baseline, keyed on
/// (skew, mode, memory_ratio). `response_virtual_us` may drift up to
/// `tol_pct` percent; the deterministic counters (overflow passes, spill
/// and restore pages, buckets, result cardinality) must match exactly.
/// Missing or extra points are failures.
pub fn compare_skew_points(
    baseline: &[SkewBenchPoint],
    fresh: &[SkewBenchPoint],
    tol_pct: f64,
) -> Vec<String> {
    let mut errs = Vec::new();
    let key = |p: &SkewBenchPoint| (p.skew.clone(), p.mode.clone(), p.memory_ratio);
    for b in baseline {
        let id = format!("skew {}/{} @ ratio {}", b.skew, b.mode, b.memory_ratio);
        let Some(f) = fresh.iter().find(|f| key(f) == key(b)) else {
            errs.push(format!("{id}: present in baseline, missing from fresh run"));
            continue;
        };
        let (old, new) = (b.response_virtual_us, f.response_virtual_us);
        if old != new {
            let drift = new.abs_diff(old) as f64 * 100.0 / (old.max(1)) as f64;
            if drift > tol_pct {
                errs.push(format!(
                    "{id}: response_virtual_us drifted {drift:.3}% ({old} -> {new}, tolerance {tol_pct}%)"
                ));
            }
        }
        for (what, old, new) in [
            ("overflow_passes", b.overflow_passes, f.overflow_passes),
            ("pages_spilled", b.pages_spilled, f.pages_spilled),
            ("pages_restored", b.pages_restored, f.pages_restored),
            ("buckets", b.buckets, f.buckets),
            ("result_tuples", b.result_tuples, f.result_tuples),
        ] {
            if old != new {
                errs.push(format!("{id}: {what} changed ({old} -> {new})"));
            }
        }
    }
    for f in fresh {
        if !baseline.iter().any(|b| key(b) == key(f)) {
            errs.push(format!(
                "skew {}/{} @ ratio {}: in fresh run but not in baseline",
                f.skew, f.mode, f.memory_ratio
            ));
        }
    }
    errs
}

/// One allocation ceiling parsed from `ALLOC_CEILINGS.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocCeiling {
    /// Algorithm name as printed by the report.
    pub algorithm: String,
    /// Memory / |inner relation| ratio.
    pub memory_ratio: f64,
    /// Maximum heap allocation events the point may perform on a serial
    /// executor (recorded with ~5% headroom over a measured run).
    pub ceiling_allocs: u64,
}

/// Parse every ceiling object out of an `ALLOC_CEILINGS.json` document.
/// Keyed on the `ceiling_allocs` field, which no other baseline carries.
pub fn parse_alloc_ceilings(json: &str) -> Vec<AllocCeiling> {
    json.lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"ceiling_allocs\""))
        .filter_map(|l| {
            Some(AllocCeiling {
                algorithm: str_field(l, "algorithm")?,
                memory_ratio: num_field(l, "memory_ratio")?,
                ceiling_allocs: num_field(l, "ceiling_allocs")? as u64,
            })
        })
        .collect()
}

/// Serialize ceilings in the same hand-rolled one-object-per-line shape the
/// other baselines use (so [`parse_alloc_ceilings`] round-trips them).
pub fn render_alloc_ceilings(scale: f64, points: &[AllocCeiling]) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"alloc_ceilings\",\n  \"scale\": {scale},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"memory_ratio\": {}, \"ceiling_allocs\": {}}}{}\n",
            p.algorithm,
            p.memory_ratio,
            p.ceiling_allocs,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Gate fresh serial allocation counts against the committed ceilings:
/// a measured count above its ceiling is a data-plane regression (the
/// ceiling carries the headroom, so the comparison is exact). Points in
/// the baseline but not measured are failures; exceeding-ly *low* counts
/// pass (tighten the ceiling by re-recording when an optimisation lands).
pub fn compare_alloc_points(
    ceilings: &[AllocCeiling],
    measured: &[(String, f64, u64)],
) -> Vec<String> {
    let mut errs = Vec::new();
    for c in ceilings {
        let id = format!("{} @ ratio {}", c.algorithm, c.memory_ratio);
        let Some((_, _, got)) = measured
            .iter()
            .find(|(a, r, _)| *a == c.algorithm && *r == c.memory_ratio)
        else {
            errs.push(format!("{id}: in alloc baseline, missing from fresh run"));
            continue;
        };
        if *got > c.ceiling_allocs {
            errs.push(format!(
                "{id}: {got} allocations exceeds the committed ceiling {} — the data plane regressed",
                c.ceiling_allocs
            ));
        }
    }
    errs
}

/// Line-by-line diff of two snapshot documents. Returns one message per
/// differing line (capped at 5, then a count) plus a line-count mismatch if
/// any; empty ⇒ byte-identical up to line endings.
pub fn diff_snapshots(label: &str, baseline: &str, fresh: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let (b_lines, f_lines): (Vec<_>, Vec<_>) =
        (baseline.lines().collect(), fresh.lines().collect());
    let mut shown = 0usize;
    let mut differing = 0usize;
    for (i, (b, f)) in b_lines.iter().zip(&f_lines).enumerate() {
        if b != f {
            differing += 1;
            if shown < 5 {
                errs.push(format!("{label}:{}: baseline `{b}` != fresh `{f}`", i + 1));
                shown += 1;
            }
        }
    }
    if differing > shown {
        errs.push(format!(
            "{label}: {} more differing lines",
            differing - shown
        ));
    }
    if b_lines.len() != f_lines.len() {
        errs.push(format!(
            "{label}: line count {} (baseline) != {} (fresh)",
            b_lines.len(),
            f_lines.len()
        ));
    }
    errs
}

/// Outcome of one regression gate, for the end-of-run summary table.
#[derive(Debug, Clone)]
pub struct GateSummary {
    /// Gate name as printed in the table.
    pub name: &'static str,
    /// Points (or snapshot files) the gate checked.
    pub checked: usize,
    /// Every violation the gate found (empty ⇒ pass).
    pub errors: Vec<String>,
    /// Why the gate did not run, when it was skipped.
    pub skipped: Option<String>,
}

impl GateSummary {
    /// A gate that ran over `checked` points.
    pub fn ran(name: &'static str, checked: usize, errors: Vec<String>) -> Self {
        GateSummary {
            name,
            checked,
            errors,
            skipped: None,
        }
    }

    /// A gate that did not run (e.g. alloc counting on a pooled build).
    pub fn skip(name: &'static str, why: impl Into<String>) -> Self {
        GateSummary {
            name,
            checked: 0,
            errors: Vec::new(),
            skipped: Some(why.into()),
        }
    }

    /// `PASS` / `FAIL` / `SKIP`.
    pub fn status(&self) -> &'static str {
        if self.skipped.is_some() {
            "SKIP"
        } else if self.errors.is_empty() {
            "PASS"
        } else {
            "FAIL"
        }
    }
}

/// Render the per-gate summary table the `regress` binary prints before
/// exiting: gate name, points checked, status, and the first offending
/// field/point (the full violation lists are printed above the table).
pub fn render_gate_table(gates: &[GateSummary]) -> String {
    let mut out = String::from(
        "gate                            checked  status  first violation / skip reason\n",
    );
    for g in gates {
        let detail = g
            .skipped
            .as_deref()
            .or_else(|| g.errors.first().map(String::as_str))
            .unwrap_or("-");
        out.push_str(&format!(
            "  {:<30} {:>7}  {:<5} {}\n",
            g.name,
            g.checked,
            g.status(),
            detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "benchmark": "joinABprime",
  "scale": 0.25,
  "executor": "parallel",
  "threads": 4,
  "points": [
    {"algorithm": "hybrid", "memory_ratio": 0.5, "response_virtual_us": 1000000, "wall_ms": 5.1, "serial_wall_ms": null, "speedup": null, "peak_pool_pages": 420, "packets": 9000, "short_circuit_ratio": 0.750}
  ]
}
"#;

    fn pt(alg: &str, ratio: f64, us: u64) -> BenchPoint {
        BenchPoint {
            algorithm: alg.into(),
            memory_ratio: ratio,
            response_virtual_us: us,
            peak_pool_pages: None,
            packets: None,
            short_circuit_ratio: None,
        }
    }

    #[test]
    fn parses_points_and_scale() {
        let pts = parse_bench_points(DOC);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].algorithm, "hybrid");
        assert_eq!(pts[0].memory_ratio, 0.5);
        assert_eq!(pts[0].response_virtual_us, 1_000_000);
        assert_eq!(pts[0].peak_pool_pages, Some(420));
        assert_eq!(pts[0].packets, Some(9_000));
        assert_eq!(pts[0].short_circuit_ratio, Some(0.75));
        assert_eq!(parse_scale(DOC), 0.25);
    }

    #[test]
    fn parses_pre_metrics_baseline() {
        let legacy = r#"    {"algorithm": "grace", "memory_ratio": 0.2, "response_virtual_us": 75003260, "wall_ms": 252.736, "serial_wall_ms": 218.438, "speedup": 0.864}"#;
        let pts = parse_bench_points(legacy);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].response_virtual_us, 75_003_260);
        assert_eq!(pts[0].peak_pool_pages, None);
        assert_eq!(pts[0].packets, None);
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = vec![pt("hybrid", 0.5, 1_000_000)];
        let fresh = vec![pt("hybrid", 0.5, 1_009_900)]; // 0.99% drift
        assert!(compare_points(&base, &fresh, 1.0).is_empty());
    }

    #[test]
    fn gate_fails_beyond_tolerance() {
        let base = vec![pt("hybrid", 0.5, 1_000_000)];
        let fresh = vec![pt("hybrid", 0.5, 1_010_100)]; // 1.01% drift
        let errs = compare_points(&base, &fresh, 1.0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("drifted"), "{errs:?}");
        // Shrinking is gated too: a 2% speedup still invalidates the baseline.
        let faster = vec![pt("hybrid", 0.5, 980_000)];
        assert!(!compare_points(&base, &faster, 1.0).is_empty());
    }

    #[test]
    fn gate_fails_on_exact_counter_mismatch() {
        let mut b = pt("hybrid", 0.5, 1_000_000);
        b.packets = Some(9_000);
        b.peak_pool_pages = Some(420);
        let mut f = b.clone();
        f.packets = Some(9_001);
        let errs = compare_points(&[b], &[f], 1.0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("packets"), "{errs:?}");
    }

    #[test]
    fn gate_fails_on_missing_or_extra_points() {
        let base = vec![pt("hybrid", 0.5, 1_000_000), pt("grace", 0.2, 2_000_000)];
        let fresh = vec![pt("hybrid", 0.5, 1_000_000), pt("simple", 1.0, 3_000_000)];
        let errs = compare_points(&base, &fresh, 1.0);
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    const SERVE_DOC: &str = r#"{
  "benchmark": "serve",
  "a_rows": 4000,
  "queries": 24,
  "budget_multiplier": 3,
  "budget_pages": 144,
  "peak_pages": 48,
  "solo_response_us": 1200000,
  "bound_qps": 2.5,
  "knee_qps": 2.2,
  "points": [
    {"rate_index": 0, "load_fraction": 0.2, "mean_interarrival_us": 2000000, "offered_qps": 0.5, "completed": 24, "makespan_us": 50000000, "throughput_qps": 0.48, "response_p50_us": 1250000, "response_p99_us": 1400000, "response_p999_us": 1400000, "mean_response_us": 1260.5, "admission_wait_total_us": 0, "peak_utilisation": 0.41}
  ]
}
"#;

    fn spt(idx: u64, makespan: u64, p50: u64) -> ServeBenchPoint {
        ServeBenchPoint {
            rate_index: idx,
            load_fraction: 0.2,
            mean_interarrival_us: 2_000_000,
            completed: 24,
            makespan_us: makespan,
            response_p50_us: p50,
            response_p99_us: p50 + 1000,
            response_p999_us: p50 + 1000,
            admission_wait_total_us: 0,
        }
    }

    #[test]
    fn parses_serve_points_and_envelope() {
        let pts = parse_serve_points(SERVE_DOC);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].rate_index, 0);
        assert_eq!(pts[0].mean_interarrival_us, 2_000_000);
        assert_eq!(pts[0].completed, 24);
        assert_eq!(pts[0].makespan_us, 50_000_000);
        assert_eq!(pts[0].response_p999_us, 1_400_000);
        assert_eq!(parse_serve_envelope(SERVE_DOC), Some((4_000, 24, 3)));
        // The joinabprime parser must not pick serve points up (no
        // algorithm key) and vice versa.
        assert!(parse_bench_points(SERVE_DOC).is_empty());
    }

    #[test]
    fn serve_gate_passes_within_tolerance_and_fails_beyond() {
        let base = vec![spt(0, 50_000_000, 1_250_000)];
        let ok = vec![spt(0, 50_400_000, 1_250_000)]; // 0.8% makespan drift
        assert!(compare_serve_points(&base, &ok, 1.0).is_empty());
        let bad = vec![spt(0, 51_000_000, 1_250_000)]; // 2% drift
        let errs = compare_serve_points(&base, &bad, 1.0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("makespan_us"), "{errs:?}");
    }

    #[test]
    fn serve_gate_is_exact_on_identity_fields() {
        let base = vec![spt(0, 50_000_000, 1_250_000)];
        let mut f = spt(0, 50_000_000, 1_250_000);
        f.completed = 23;
        f.mean_interarrival_us = 2_000_001;
        let errs = compare_serve_points(&base, &[f], 1.0);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("completed")));
        assert!(errs.iter().any(|e| e.contains("mean_interarrival_us")));
    }

    #[test]
    fn serve_gate_fails_on_missing_or_extra_points() {
        let base = vec![spt(0, 1, 1), spt(1, 1, 1)];
        let fresh = vec![spt(1, 1, 1), spt(2, 1, 1)];
        let errs = compare_serve_points(&base, &fresh, 1.0);
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn serve_gate_catches_zero_baseline_regressions() {
        // admission_wait_total_us 0 -> 500: 50000% relative to max(0,1).
        let base = vec![spt(0, 1_000, 1_000)];
        let mut f = spt(0, 1_000, 1_000);
        f.admission_wait_total_us = 500;
        let errs = compare_serve_points(&base, &[f], 1.0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("admission_wait_total_us"), "{errs:?}");
    }

    const SKEW_DOC: &str = r#"{
  "benchmark": "skew",
  "a_rows": 4000,
  "bprime_rows": 400,
  "points": [
    {"skew": "nu", "mode": "legacy", "memory_ratio": 0.6, "response_virtual_us": 9000000, "overflow_passes": 1, "pages_spilled": 0, "pages_restored": 0, "buckets": 1, "result_tuples": 2100, "bnl": false},
    {"skew": "nu", "mode": "robust", "memory_ratio": 0.6, "response_virtual_us": 7000000, "overflow_passes": 0, "pages_spilled": 12, "pages_restored": 30, "buckets": 1, "result_tuples": 2100, "bnl": false}
  ]
}
"#;

    fn kpt(skew: &str, mode: &str, ratio: f64, us: u64) -> SkewBenchPoint {
        SkewBenchPoint {
            skew: skew.into(),
            mode: mode.into(),
            memory_ratio: ratio,
            response_virtual_us: us,
            overflow_passes: 1,
            pages_spilled: 0,
            pages_restored: 0,
            buckets: 1,
            result_tuples: 2_100,
        }
    }

    #[test]
    fn parses_skew_points_and_envelope() {
        let pts = parse_skew_points(SKEW_DOC);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].skew, "nu");
        assert_eq!(pts[0].mode, "legacy");
        assert_eq!(pts[0].response_virtual_us, 9_000_000);
        assert_eq!(pts[1].pages_restored, 30);
        assert_eq!(parse_skew_envelope(SKEW_DOC), Some((4_000, 400)));
    }

    #[test]
    fn skew_points_are_invisible_to_the_other_parsers_and_vice_versa() {
        // Cross-parser isolation: each baseline document must only feed its
        // own gate, or a gate would fail on fields that are not there.
        assert!(parse_bench_points(SKEW_DOC).is_empty());
        assert!(parse_serve_points(SKEW_DOC).is_empty());
        assert!(parse_skew_points(DOC).is_empty());
        assert!(parse_skew_points(SERVE_DOC).is_empty());
    }

    #[test]
    fn skew_gate_drifts_response_and_exacts_counters() {
        let base = vec![kpt("nu", "legacy", 0.6, 1_000_000)];
        let ok = vec![kpt("nu", "legacy", 0.6, 1_009_000)]; // 0.9%
        assert!(compare_skew_points(&base, &ok, 1.0).is_empty());
        let bad = vec![kpt("nu", "legacy", 0.6, 1_020_000)]; // 2%
        let errs = compare_skew_points(&base, &bad, 1.0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("drifted"), "{errs:?}");
        let mut f = kpt("nu", "legacy", 0.6, 1_000_000);
        f.overflow_passes = 2;
        f.pages_restored = 5;
        let errs = compare_skew_points(&base, &[f], 1.0);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("overflow_passes")));
        assert!(errs.iter().any(|e| e.contains("pages_restored")));
    }

    #[test]
    fn skew_gate_fails_on_missing_or_extra_points() {
        let base = vec![kpt("nu", "legacy", 0.6, 1), kpt("nu", "robust", 0.6, 1)];
        let fresh = vec![kpt("nu", "robust", 0.6, 1), kpt("sharp", "robust", 0.6, 1)];
        let errs = compare_skew_points(&base, &fresh, 1.0);
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn alloc_ceilings_round_trip_and_gate() {
        let ceilings = vec![
            AllocCeiling {
                algorithm: "hybrid".into(),
                memory_ratio: 0.5,
                ceiling_allocs: 10_000,
            },
            AllocCeiling {
                algorithm: "grace".into(),
                memory_ratio: 0.2,
                ceiling_allocs: 20_000,
            },
        ];
        let doc = render_alloc_ceilings(0.2, &ceilings);
        assert_eq!(parse_alloc_ceilings(&doc), ceilings);
        assert_eq!(parse_scale(&doc), 0.2);
        // The other parsers must not pick ceiling points up.
        assert!(parse_bench_points(&doc).is_empty());
        assert!(parse_serve_points(&doc).is_empty());
        assert!(parse_skew_points(&doc).is_empty());

        // At or under the ceiling passes; over fails; missing fails.
        let ok = vec![
            ("hybrid".to_string(), 0.5, 10_000u64),
            ("grace".to_string(), 0.2, 5_000),
        ];
        assert!(compare_alloc_points(&ceilings, &ok).is_empty());
        let over = vec![
            ("hybrid".to_string(), 0.5, 10_001u64),
            ("grace".to_string(), 0.2, 5_000),
        ];
        let errs = compare_alloc_points(&ceilings, &over);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("exceeds"), "{errs:?}");
        let missing = vec![("hybrid".to_string(), 0.5, 1u64)];
        let errs = compare_alloc_points(&ceilings, &missing);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing"), "{errs:?}");
    }

    #[test]
    fn gate_table_shows_status_and_first_violation() {
        let gates = [
            GateSummary::ran("baseline points", 12, vec![]),
            GateSummary::ran(
                "flight-recorder snapshots",
                2,
                vec![
                    "results/prof-hybrid-r50.json:7: baseline `1` != fresh `2`".into(),
                    "second violation".into(),
                ],
            ),
            GateSummary::skip("alloc ceilings", "worker pool active"),
        ];
        let table = render_gate_table(&gates);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[1].contains("baseline points") && lines[1].contains("PASS"));
        assert!(
            lines[2].contains("FAIL") && lines[2].contains("prof-hybrid-r50.json:7"),
            "{table}"
        );
        assert!(
            !table.contains("second violation"),
            "only the first violation belongs in the table"
        );
        assert!(lines[3].contains("SKIP") && lines[3].contains("worker pool active"));
        assert_eq!(gates[0].status(), "PASS");
        assert_eq!(gates[1].status(), "FAIL");
        assert_eq!(gates[2].status(), "SKIP");
    }

    #[test]
    fn snapshot_diff_finds_changed_lines() {
        assert!(diff_snapshots("s", "a\nb\nc\n", "a\nb\nc\n").is_empty());
        let errs = diff_snapshots("s", "a\nb\nc\n", "a\nX\nc\nd\n");
        assert!(errs.iter().any(|e| e.contains("s:2")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("line count")), "{errs:?}");
    }
}
