//! Terminal rendering of experiment series — the closest a CLI gets to the
//! paper's figures. Each algorithm gets a glyph; the x-axis is the memory
//! ratio (descending, as the paper draws it), the y-axis response seconds.

use std::collections::BTreeMap;

use crate::sweep::ExperimentPoint;

const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render one figure's points as an ASCII chart of `width` × `height`
/// characters (plus axes and legend).
pub fn render(points: &[ExperimentPoint], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 6, "chart too small to draw");
    if points.is_empty() {
        return "(no points)\n".into();
    }

    // Group by series label, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut series: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
    for p in points {
        if !series.contains_key(p.algorithm.as_str()) {
            order.push(&p.algorithm);
        }
        series
            .entry(p.algorithm.as_str())
            .or_default()
            .push((p.ratio, p.seconds));
    }

    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymax, ymin) = (f64::MIN, 0.0f64);
    for p in points {
        xmin = xmin.min(p.ratio);
        xmax = xmax.max(p.ratio);
        ymax = ymax.max(p.seconds);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    ymax *= 1.05;

    let mut grid = vec![vec![' '; width]; height];
    for (si, name) in order.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &series[name] {
            // Paper convention: full memory on the right.
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            let cell = &mut grid[row][col];
            // Collisions render as '?' so overplotting is visible.
            *cell = if *cell == ' ' || *cell == glyph {
                glyph
            } else {
                '?'
            };
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let yval = ymax * (height - 1 - i) as f64 / (height - 1) as f64;
        out.push_str(&format!("{yval:>8.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8}  {:<width$.2}{:>.2}\n",
        "ratio",
        xmin,
        xmax,
        width = width - 3
    ));
    out.push_str("          ");
    for (si, name) in order.iter().enumerate() {
        out.push_str(&format!("{} {}   ", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepBuilder, Workload};
    use gamma_core::query::Algorithm;

    fn points() -> Vec<ExperimentPoint> {
        let w = Workload::scaled(800, 80);
        SweepBuilder::new(&w).run(
            &[Algorithm::HybridHash, Algorithm::GraceHash],
            &[1.0, 0.5, 0.25],
        )
    }

    #[test]
    fn renders_all_series_with_axes() {
        let pts = points();
        let chart = render(&pts, 40, 10);
        assert!(chart.contains('*'), "first series glyph present:\n{chart}");
        assert!(chart.contains('o'), "second series glyph present:\n{chart}");
        assert!(chart.contains("hybrid"));
        assert!(chart.contains("grace"));
        assert!(chart.contains('|'));
        assert!(chart.lines().count() >= 12);
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render(&[], 40, 10), "(no points)\n");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let pts = points();
        render(&pts, 4, 2);
    }
}
