//! Flight-recorder acceptance properties: the rendered artifacts must be
//! byte-identical across runs and across executors (serial and pool
//! sizes 1/2/8). The profile is a pure function of the replayed ledgers,
//! so the host executor must be invisible in it.

use std::sync::Arc;

use gamma_bench::prof::{render_csv, render_json, solo_profile_with};
use gamma_bench::Workload;
use gamma_core::query::Algorithm;
use gamma_core::{ExecConfig, WorkerPool};

#[test]
fn profiles_are_byte_identical_across_runs_and_pool_sizes() {
    let w = Workload::scaled(2_000, 200);
    let serial = solo_profile_with(&w, Algorithm::GraceHash, 0.2, 10_000, ExecConfig::serial());
    let reference_json = render_json(&serial);
    let reference_csv = render_csv(&serial);

    // Run-to-run identity on the same executor.
    let again = solo_profile_with(&w, Algorithm::GraceHash, 0.2, 10_000, ExecConfig::serial());
    assert_eq!(reference_json, render_json(&again));
    assert_eq!(reference_csv, render_csv(&again));

    // Executor invariance: pools of 1, 2 and 8 workers all reproduce the
    // serial artifacts byte for byte.
    for workers in [1usize, 2, 8] {
        let pool = Arc::new(WorkerPool::new(workers));
        let run = solo_profile_with(
            &w,
            Algorithm::GraceHash,
            0.2,
            10_000,
            ExecConfig::pooled(pool),
        );
        assert_eq!(reference_json, render_json(&run), "pool size {workers}");
        assert_eq!(reference_csv, render_csv(&run), "pool size {workers}");
    }
}

#[test]
fn both_tracked_algorithms_profile_cleanly() {
    // The two committed artifact points (at test scale): hybrid r50 and
    // grace r20 both produce well-formed, reconciling profiles.
    let w = Workload::scaled(2_000, 200);
    for (alg, ratio) in [(Algorithm::HybridHash, 0.5), (Algorithm::GraceHash, 0.2)] {
        let run = solo_profile_with(&w, alg, ratio, 10_000, ExecConfig::auto());
        let doc = render_json(&run);
        assert!(doc.contains("\"benchmark\": \"prof\""));
        assert!(doc.contains("\"series\": ["));
        let last_tick_of = |name: &str| -> i64 {
            *run.profile
                .series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .values
                .last()
                .unwrap()
        };
        // The solo query drains by the final sampled boundary.
        assert_eq!(last_tick_of("inflight_queries"), 0, "{alg:?}");
        assert_eq!(last_tick_of("admission_backlog"), 0, "{alg:?}");
    }
}
