//! Micro-benchmarks of the substrate layers (host performance of the
//! simulator itself, not virtual time). Runs on the local harness in
//! `gamma_bench::microbench`; gated behind the `bench-heavy` feature.

use gamma_bench::microbench::{black_box, Harness};
use gamma_core::bitfilter::BitFilter;
use gamma_core::hash::{hash_u32, JOIN_SEED};
use gamma_core::hash_table::JoinHashTable;
use gamma_core::split::{JoiningSplitTable, PartitioningSplitTable};
use gamma_des::Usage;
use gamma_net::{Fabric, RingConfig};
use gamma_wiss::btree::BPlusTree;
use gamma_wiss::{
    external_sort, BufferPool, DiskConfig, HeapScan, HeapWriter, Page, SortConfig, SortCost, Volume,
};

fn bench_hash(c: &mut Harness) {
    let mut g = c.group("hash");
    g.throughput_elems(1);
    g.bench("hash_u32", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = v.wrapping_add(1);
            black_box(hash_u32(JOIN_SEED, v))
        })
    });
}

fn bench_page(c: &mut Harness) {
    let mut g = c.group("page");
    let rec = [7u8; 208];
    g.throughput_elems(38);
    g.bench("fill_8k_with_wisconsin_tuples", |b| {
        b.iter(|| {
            let mut p = Page::new(8192);
            while p.insert(black_box(&rec)).is_some() {}
            black_box(p.len())
        })
    });
    g.bench("iterate_full_page", |b| {
        let mut p = Page::new(8192);
        while p.insert(&rec).is_some() {}
        b.iter(|| {
            let mut n = 0usize;
            for r in p.records() {
                n += r.len();
            }
            black_box(n)
        })
    });
}

fn bench_heap(c: &mut Harness) {
    let mut g = c.group("heap");
    g.throughput_elems(10_000);
    g.bench("write_scan_10k_tuples", |b| {
        b.iter(|| {
            let mut vol = Volume::new();
            let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 8);
            let mut u = Usage::ZERO;
            let mut w = HeapWriter::create(&mut vol, 8192);
            let rec = [3u8; 208];
            for _ in 0..10_000 {
                w.push(&mut vol, &mut pool, &mut u, &rec);
            }
            let f = w.finish(&mut vol, &mut pool, &mut u);
            let got = HeapScan::open(&vol, f).collect_all(&mut pool, &mut u);
            black_box(got.len())
        })
    });
}

fn bench_hash_table(c: &mut Harness) {
    let mut g = c.group("join_hash_table");
    g.throughput_elems(10_000);
    g.bench("build_10k", |b| {
        b.iter(|| {
            let mut t = JoinHashTable::new(16 << 20, 208, 1);
            for v in 0..10_000u32 {
                let _ = t.offer(v, vec![0u8; 208], 10);
            }
            black_box(t.len())
        })
    });
    g.bench("probe_10k", |b| {
        let mut t = JoinHashTable::new(16 << 20, 208, 1);
        for v in 0..10_000u32 {
            let _ = t.offer(v, vec![0u8; 208], 10);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for v in 0..10_000u32 {
                let (m, _) = t.probe(v * 3);
                hits += m.len() as u64;
            }
            black_box(hits)
        })
    });
    g.bench("build_with_overflow_clearing", |b| {
        b.iter(|| {
            let mut t = JoinHashTable::new(200_000, 208, 1);
            for v in 0..5_000u32 {
                let _ = t.offer(v, vec![0u8; 208], 10);
            }
            black_box(t.clearings())
        })
    });
}

fn bench_bitfilter(c: &mut Harness) {
    let mut g = c.group("bitfilter");
    g.throughput_elems(100_000);
    g.bench("set_and_test_100k", |b| {
        b.iter(|| {
            let mut f = BitFilter::new(1973, 0);
            for v in 0..10_000u32 {
                f.set(v);
            }
            let mut passed = 0u64;
            for v in 0..100_000u32 {
                if f.test(v) {
                    passed += 1;
                }
            }
            black_box(passed)
        })
    });
}

fn bench_split_tables(c: &mut Harness) {
    let mut g = c.group("split_tables");
    let disks: Vec<usize> = (0..8).collect();
    let part = PartitioningSplitTable::grace(&disks, 10);
    let join = JoiningSplitTable::new(disks);
    g.throughput_elems(1);
    g.bench("partitioning_route", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(0x9E3779B97F4A7C15);
            black_box(part.route(h))
        })
    });
    g.bench("joining_route", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(0x9E3779B97F4A7C15);
            black_box(join.route(h))
        })
    });
}

fn bench_sort(c: &mut Harness) {
    let mut g = c.group("external_sort");
    g.sample_size(20);
    g.throughput_elems(20_000);
    g.bench("sort_20k_records_64k_memory", |b| {
        b.iter(|| {
            let mut vol = Volume::new();
            let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 8);
            let mut u = Usage::ZERO;
            let mut w = HeapWriter::create(&mut vol, 8192);
            for i in 0..20_000u32 {
                let k = i.wrapping_mul(2654435761);
                let mut rec = vec![0u8; 64];
                rec[0..4].copy_from_slice(&k.to_le_bytes());
                w.push(&mut vol, &mut pool, &mut u, &rec);
            }
            let input = w.finish(&mut vol, &mut pool, &mut u);
            let key = |r: &[u8]| u32::from_le_bytes(r[0..4].try_into().unwrap());
            let cfg = SortConfig {
                mem_bytes: 64 * 1024,
                page_bytes: 8192,
            };
            let (out, stats) = external_sort(
                &mut vol,
                &mut pool,
                input,
                &key,
                cfg,
                &SortCost::default(),
                &mut u,
            );
            black_box((out, stats.merge_passes))
        })
    });
}

fn bench_btree(c: &mut Harness) {
    let mut g = c.group("btree");
    g.throughput_elems(50_000);
    g.bench("insert_50k", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for i in 0..50_000u64 {
                t.insert(i.wrapping_mul(0x9E3779B97F4A7C15) >> 16, i);
            }
            black_box(t.depth())
        })
    });
    g.bench("lookup_50k", |b| {
        let mut t = BPlusTree::new();
        for i in 0..50_000u64 {
            t.insert(i, i);
        }
        b.iter(|| {
            let mut found = 0u64;
            for i in (0..50_000u64).step_by(7) {
                if t.get(&i).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
}

fn bench_fabric(c: &mut Harness) {
    let mut g = c.group("fabric");
    g.throughput_elems(100_000);
    g.bench("route_100k_tuples", |b| {
        b.iter(|| {
            let mut f = Fabric::new(RingConfig::gamma_1989(), 16);
            let mut u = vec![Usage::ZERO; 16];
            for i in 0..100_000u64 {
                f.send_tuple(&mut u, (i % 8) as usize, (i % 16) as usize, 208);
            }
            f.flush(&mut u);
            black_box(u[0].counts.packets_sent)
        })
    });
}

fn main() {
    let mut c = Harness::from_args();
    bench_hash(&mut c);
    bench_page(&mut c);
    bench_heap(&mut c);
    bench_hash_table(&mut c);
    bench_bitfilter(&mut c);
    bench_split_tables(&mut c);
    bench_sort(&mut c);
    bench_btree(&mut c);
    bench_fabric(&mut c);
}
