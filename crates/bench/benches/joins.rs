//! Micro-benchmarks of full join executions — one group per paper
//! experiment family, at 1/10 scale so a bench run stays short.
//! (Full-scale virtual-time results come from the `figures` binary; these
//! measure the *simulator's* host throughput per configuration.)
//!
//! Runs on the local harness in `gamma_bench::microbench`; gated behind
//! the `bench-heavy` feature.

use gamma_bench::microbench::{black_box, Harness};
use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::{Algorithm, OverflowPolicy};

fn workload() -> Workload {
    Workload::scaled(10_000, 1_000)
}

/// Figures 5/6: the four algorithms, HPJA and non-HPJA, local.
fn bench_fig5_fig6(c: &mut Harness) {
    let w = workload();
    let mut g = c.group("joinABprime_local");
    g.sample_size(10);
    for (label, inner, outer) in [
        ("hpja", "unique1", "unique1"),
        ("nonhpja", "unique2", "unique2"),
    ] {
        for alg in Algorithm::ALL {
            let sweep = SweepBuilder::new(&w).on(inner, outer);
            g.bench(&format!("{label}/{}", alg.name()), |b| {
                b.iter(|| black_box(sweep.run_one(alg, 0.25).seconds))
            });
        }
    }
}

/// Figure 7: Hybrid's overflow-vs-bucket trade-off.
fn bench_fig7(c: &mut Harness) {
    let w = workload();
    let mut g = c.group("hybrid_overflow_policy");
    g.sample_size(10);
    for (label, policy) in [
        ("optimistic", OverflowPolicy::Optimistic),
        ("pessimistic", OverflowPolicy::Pessimistic),
    ] {
        let sweep = SweepBuilder::new(&w).policy(policy);
        g.bench(label, |b| {
            b.iter(|| black_box(sweep.run_one(Algorithm::HybridHash, 0.7).seconds))
        });
    }
}

/// Figures 8-13: bit filtering on and off.
fn bench_filters(c: &mut Harness) {
    let w = workload();
    let mut g = c.group("bit_filtering");
    g.sample_size(10);
    for alg in Algorithm::ALL {
        for (label, filter) in [("plain", false), ("filtered", true)] {
            let sweep = SweepBuilder::new(&w).filtered(filter);
            g.bench(&format!("{}/{label}", alg.name()), |b| {
                b.iter(|| black_box(sweep.run_one(alg, 0.25).seconds))
            });
        }
    }
}

/// Figures 14-16: local, remote and mixed configurations.
fn bench_sites(c: &mut Harness) {
    let w = workload();
    let mut g = c.group("join_sites");
    g.sample_size(10);
    for site in ["local", "remote", "mixed"] {
        g.bench(site, |b| {
            b.iter(|| {
                let sweep = match site {
                    "remote" => SweepBuilder::new(&w).on("unique2", "unique2").remote(),
                    "mixed" => SweepBuilder::new(&w).on("unique2", "unique2").mixed(),
                    _ => SweepBuilder::new(&w).on("unique2", "unique2"),
                };
                black_box(sweep.run_one(Algorithm::HybridHash, 0.5).seconds)
            })
        });
    }
}

/// Tables 3/4: the skew matrix.
fn bench_skew(c: &mut Harness) {
    let w = workload();
    let mut g = c.group("skew");
    g.sample_size(10);
    for (label, inner, outer) in [
        ("UU", "unique1", "unique1"),
        ("NU", "normal", "unique1"),
        ("UN", "unique1", "normal"),
    ] {
        let sweep = SweepBuilder::new(&w).on(inner, outer).range_loaded();
        g.bench(label, |b| {
            b.iter(|| black_box(sweep.run_one(Algorithm::HybridHash, 0.17).seconds))
        });
    }
}

fn main() {
    let mut c = Harness::from_args();
    bench_fig5_fig6(&mut c);
    bench_fig7(&mut c);
    bench_filters(&mut c);
    bench_sites(&mut c);
    bench_skew(&mut c);
}
