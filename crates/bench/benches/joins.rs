//! Criterion benchmarks of full join executions — one group per paper
//! experiment family, at 1/10 scale so a `cargo bench` run stays short.
//! (Full-scale virtual-time results come from the `figures` binary; these
//! measure the *simulator's* host throughput per configuration.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::{Algorithm, OverflowPolicy};

fn workload() -> Workload {
    Workload::scaled(10_000, 1_000)
}

/// Figures 5/6: the four algorithms, HPJA and non-HPJA, local.
fn bench_fig5_fig6(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("joinABprime_local");
    g.sample_size(10);
    for (label, inner, outer) in [("hpja", "unique1", "unique1"), ("nonhpja", "unique2", "unique2")] {
        for alg in Algorithm::ALL {
            g.bench_with_input(
                BenchmarkId::new(label, alg.name()),
                &alg,
                |b, &alg| {
                    let sweep = SweepBuilder::new(&w).on(inner, outer);
                    b.iter(|| black_box(sweep.run_one(alg, 0.25).seconds))
                },
            );
        }
    }
    g.finish();
}

/// Figure 7: Hybrid's overflow-vs-bucket trade-off.
fn bench_fig7(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("hybrid_overflow_policy");
    g.sample_size(10);
    for (label, policy) in [
        ("optimistic", OverflowPolicy::Optimistic),
        ("pessimistic", OverflowPolicy::Pessimistic),
    ] {
        g.bench_function(label, |b| {
            let sweep = SweepBuilder::new(&w).policy(policy);
            b.iter(|| black_box(sweep.run_one(Algorithm::HybridHash, 0.7).seconds))
        });
    }
    g.finish();
}

/// Figures 8-13: bit filtering on and off.
fn bench_filters(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("bit_filtering");
    g.sample_size(10);
    for alg in Algorithm::ALL {
        for (label, filter) in [("plain", false), ("filtered", true)] {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), label),
                &(alg, filter),
                |b, &(alg, filter)| {
                    let sweep = SweepBuilder::new(&w).filtered(filter);
                    b.iter(|| black_box(sweep.run_one(alg, 0.25).seconds))
                },
            );
        }
    }
    g.finish();
}

/// Figures 14-16: local, remote and mixed configurations.
fn bench_sites(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("join_sites");
    g.sample_size(10);
    for site in ["local", "remote", "mixed"] {
        g.bench_function(site, |b| {
            b.iter(|| {
                let sweep = match site {
                    "remote" => SweepBuilder::new(&w).on("unique2", "unique2").remote(),
                    "mixed" => SweepBuilder::new(&w).on("unique2", "unique2").mixed(),
                    _ => SweepBuilder::new(&w).on("unique2", "unique2"),
                };
                black_box(sweep.run_one(Algorithm::HybridHash, 0.5).seconds)
            })
        });
    }
    g.finish();
}

/// Tables 3/4: the skew matrix.
fn bench_skew(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("skew");
    g.sample_size(10);
    for (label, inner, outer) in [
        ("UU", "unique1", "unique1"),
        ("NU", "normal", "unique1"),
        ("UN", "unique1", "normal"),
    ] {
        g.bench_function(label, |b| {
            let sweep = SweepBuilder::new(&w).on(inner, outer).range_loaded();
            b.iter(|| black_box(sweep.run_one(Algorithm::HybridHash, 0.17).seconds))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig5_fig6,
    bench_fig7,
    bench_filters,
    bench_sites,
    bench_skew
);
criterion_main!(benches);
