//! Edge cases and failure-injection: machine shapes, degenerate inputs
//! and adversarial data the figures never exercise.

use gamma_core::cost::CostModel;
use gamma_core::machine::{Declustering, MachineConfig};
use gamma_core::query::{Algorithm, JoinSite, JoinSpec};
use gamma_core::tuple::{Field, Schema};
use gamma_core::{run_join, Machine};

fn small_schema() -> Schema {
    Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 28)])
}

fn mk(schema: &Schema, k: u32) -> Vec<u8> {
    let mut t = vec![0u8; schema.tuple_bytes()];
    schema.int_attr("k").put(&mut t, k);
    t
}

fn load(machine: &mut Machine, name: &str, keys: &[u32]) -> gamma_core::RelationId {
    let s = small_schema();
    let attr = s.int_attr("k");
    machine.load_relation(
        name,
        s.clone(),
        Declustering::Hashed { attr },
        keys.iter().map(|&k| mk(&s, k)).collect::<Vec<_>>(),
    )
}

fn join(machine: &mut Machine, alg: Algorithm, r: usize, s: usize, mem: u64) -> u64 {
    let schema = small_schema();
    let attr = schema.int_attr("k");
    let spec = JoinSpec::new(alg, r, s, attr, attr, mem);
    run_join(machine, &spec).result_tuples
}

/// Empty inner, empty outer, both empty — all algorithms.
#[test]
fn empty_relations() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let empty = load(&mut m, "e", &[]);
        let full = load(&mut m, "f", &(0..100).collect::<Vec<_>>());
        assert_eq!(
            join(&mut m, alg, empty, full, 1024),
            0,
            "{} e⋈f",
            alg.name()
        );
        assert_eq!(
            join(&mut m, alg, full, empty, 1024),
            0,
            "{} f⋈e",
            alg.name()
        );
        assert_eq!(
            join(&mut m, alg, empty, empty, 1024),
            0,
            "{} e⋈e",
            alg.name()
        );
    }
}

/// A single-tuple inner against a single-tuple outer.
#[test]
fn singleton_relations() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let a = load(&mut m, "a", &[7]);
        let b = load(&mut m, "b", &[7]);
        let c = load(&mut m, "c", &[8]);
        assert_eq!(join(&mut m, alg, a, b, 64), 1, "{}", alg.name());
        assert_eq!(join(&mut m, alg, a, c, 64), 0, "{}", alg.name());
    }
}

/// A one-disk-node "machine" still runs every algorithm correctly.
#[test]
fn single_node_machine() {
    let cfg = MachineConfig {
        disk_nodes: 1,
        diskless_nodes: 0,
        cost: CostModel::gamma_1989(),
    };
    for alg in Algorithm::ALL {
        let mut m = Machine::new(cfg.clone());
        let r = load(&mut m, "r", &(0..50).collect::<Vec<_>>());
        let s = load(&mut m, "s", &(0..200).map(|k| k % 50).collect::<Vec<_>>());
        assert_eq!(join(&mut m, alg, r, s, 512), 200, "{}", alg.name());
    }
}

/// Asymmetric machines (3 disks + 5 diskless) exercise the bucket analyzer
/// on every remote join.
#[test]
fn asymmetric_machine_remote_joins() {
    let cfg = MachineConfig {
        disk_nodes: 3,
        diskless_nodes: 5,
        cost: CostModel::gamma_1989(),
    };
    for alg in [
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ] {
        let mut m = Machine::new(cfg.clone());
        let r = load(&mut m, "r", &(0..300).collect::<Vec<_>>());
        let s = load(&mut m, "s", &(0..900).map(|k| k % 300).collect::<Vec<_>>());
        let schema = small_schema();
        let attr = schema.int_attr("k");
        let mut spec = JoinSpec::new(alg, r, s, attr, attr, 2_000);
        spec.site = JoinSite::Remote;
        let report = run_join(&mut m, &spec);
        assert_eq!(report.result_tuples, 900, "{}", alg.name());
    }
}

/// Every inner tuple carries the same key and the outer matches it: a
/// cross-product-like hot key that defeats hash partitioning entirely.
#[test]
fn single_hot_key_cross_product() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let r = load(&mut m, "r", &vec![42u32; 60]);
        let s = load(&mut m, "s", &[42u32; 40]);
        // Memory far below the hot key's footprint: hash joins must fall
        // back (BNL) and sort-merge must back up over duplicates.
        let got = join(&mut m, alg, r, s, 1_500);
        assert_eq!(got, 60 * 40, "{}", alg.name());
    }
}

/// Keys at the extremes of the u32 domain.
#[test]
fn extreme_key_values() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let keys = [0u32, 1, u32::MAX, u32::MAX - 1, 0x8000_0000];
        let r = load(&mut m, "r", &keys);
        let s = load(&mut m, "s", &keys);
        assert_eq!(
            join(&mut m, alg, r, s, 64),
            keys.len() as u64,
            "{}",
            alg.name()
        );
    }
}

/// Inner larger than outer (the paper always joins small ⋈ large; the
/// engine must still be correct if a caller gets it backwards).
#[test]
fn inner_larger_than_outer() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let big = load(&mut m, "big", &(0..500).collect::<Vec<_>>());
        let small = load(&mut m, "small", &(0..50).collect::<Vec<_>>());
        assert_eq!(join(&mut m, alg, big, small, 2_000), 50, "{}", alg.name());
    }
}

/// Non-standard page sizes end to end.
#[test]
fn alternate_page_sizes() {
    for page in [2048usize, 4096, 32768] {
        let mut cost = CostModel::gamma_1989();
        cost.disk.page_bytes = page;
        let cfg = MachineConfig {
            disk_nodes: 4,
            diskless_nodes: 0,
            cost,
        };
        for alg in Algorithm::ALL {
            let mut m = Machine::new(cfg.clone());
            let r = load(&mut m, "r", &(0..100).collect::<Vec<_>>());
            let s = load(&mut m, "s", &(0..400).map(|k| k % 100).collect::<Vec<_>>());
            assert_eq!(
                join(&mut m, alg, r, s, 1_000),
                400,
                "{} page={page}",
                alg.name()
            );
        }
    }
}

/// Memory of a single byte: the most extreme pressure representable.
#[test]
fn one_byte_of_join_memory() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let r = load(&mut m, "r", &(0..40).collect::<Vec<_>>());
        let s = load(&mut m, "s", &(0..80).map(|k| k % 40).collect::<Vec<_>>());
        assert_eq!(join(&mut m, alg, r, s, 1), 80, "{}", alg.name());
    }
}

/// Remote sort-merge is rejected loudly (paper §3.1: the implementation
/// cannot utilize diskless processors).
#[test]
#[should_panic(expected = "cannot utilize diskless processors")]
fn remote_sort_merge_panics() {
    let mut m = Machine::new(MachineConfig::remote_8_plus_8());
    let r = load(&mut m, "r", &[1]);
    let s = load(&mut m, "s", &[1]);
    let schema = small_schema();
    let attr = schema.int_attr("k");
    let mut spec = JoinSpec::new(Algorithm::SortMerge, r, s, attr, attr, 64);
    spec.site = JoinSite::Remote;
    run_join(&mut m, &spec);
}

/// Remote joins without diskless nodes are rejected loudly.
#[test]
#[should_panic(expected = "without diskless nodes")]
fn remote_join_needs_diskless_nodes() {
    let mut m = Machine::new(MachineConfig::local_8());
    let r = load(&mut m, "r", &[1]);
    let s = load(&mut m, "s", &[1]);
    let schema = small_schema();
    let attr = schema.int_attr("k");
    let mut spec = JoinSpec::new(Algorithm::HybridHash, r, s, attr, attr, 64);
    spec.site = JoinSite::Remote;
    run_join(&mut m, &spec);
}

/// Bit filters stay exact under every edge shape above.
#[test]
fn filters_on_edge_shapes() {
    for alg in Algorithm::ALL {
        let mut m = Machine::new(MachineConfig::local_8());
        let r = load(&mut m, "r", &[9u32; 30]);
        let s = load(&mut m, "s", &(0..60).map(|k| k % 3 * 9).collect::<Vec<_>>());
        let schema = small_schema();
        let attr = schema.int_attr("k");
        let mut spec = JoinSpec::new(alg, r, s, attr, attr, 256);
        spec.bit_filter = true;
        let report = run_join(&mut m, &spec);
        // s values are 0, 9, 18; only 9 matches, 20 outer tuples carry it.
        assert_eq!(report.result_tuples, 30 * 20, "{}", alg.name());
    }
}
