//! Cliff-regression tests for the robust dynamic Hybrid path.
//!
//! The Figure 7 "optimistic" policy under-provisions buckets at
//! non-integral memory ratios; the legacy all-or-nothing overflow
//! machinery turns the shortfall into full re-spray passes, and data skew
//! sharpens the resulting response-time cliff. These tests pin the fix:
//! with skew-aware split-table refinement and dynamic spill/restore on,
//! the cliff cells flatten and the global re-spray passes disappear,
//! while the legacy path still reproduces the cliff for A/B comparison.
//!
//! All quantities are virtual-time and the engine is deterministic, so
//! the thresholds below are stable across machines and executors. The
//! grid matches the committed `BENCH_skew.json` baseline (A = 4000,
//! Bprime = 400) restricted to the cliff-side ratios — each point is an
//! independent join, so restricting the ratio list leaves the shared
//! points byte-identical to the full sweep.

use gamma_bench::skew::{skew_sweep, SkewPoint, SkewSweep, SkewSweepConfig};
use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::{Algorithm, OverflowPolicy};

fn cliff_sweep() -> SkewSweep {
    skew_sweep(&SkewSweepConfig {
        a_rows: 4_000,
        bprime_rows: 400,
        ratios: vec![0.7, 0.6, 0.5],
    })
}

/// Worst adjacent response-time jump along a ratio series, as a factor.
fn max_adjacent_jump(series: &[&SkewPoint]) -> f64 {
    series
        .windows(2)
        .map(|w| w[1].response_virtual_us as f64 / w[0].response_virtual_us as f64)
        .fold(1.0, f64::max)
}

#[test]
fn robust_path_flattens_the_skew_cliff_legacy_still_reproduces_it() {
    let sweep = cliff_sweep();

    // The legacy machinery shows the cliff where it is sharpest: under
    // sharp skew the last halving of memory costs > 30% extra response
    // time and piles up 3 global re-spray passes.
    let legacy_sharp = sweep.series("sharp", "legacy");
    assert!(
        max_adjacent_jump(&legacy_sharp) > 1.30,
        "legacy sharp-skew cliff vanished: {legacy_sharp:?}"
    );
    assert!(
        legacy_sharp.last().unwrap().overflow_passes >= 3,
        "legacy sharp-skew pass pileup vanished: {legacy_sharp:?}"
    );

    // The robust path flattens the same cells. Under sharp skew the
    // worst jump drops below 15%; under moderate (nu) skew both modes
    // still pay the inherent 1 → 2 bucket transition at ratio 0.5, so
    // the claim there is that robust's worst jump is strictly smaller
    // than legacy's. The cliff cell itself runs strictly faster than
    // legacy at every skew level.
    assert!(
        max_adjacent_jump(&sweep.series("sharp", "robust")) < 1.15,
        "sharp/robust still has a cliff: {:?}",
        sweep.series("sharp", "robust")
    );
    for skew in ["nu", "sharp"] {
        let legacy = max_adjacent_jump(&sweep.series(skew, "legacy"));
        let robust = max_adjacent_jump(&sweep.series(skew, "robust"));
        assert!(
            robust < legacy,
            "{skew}: robust worst jump {robust:.3} not below legacy {legacy:.3}"
        );
    }
    for skew in ["uniform", "nu", "sharp"] {
        let legacy = sweep.series(skew, "legacy");
        let robust = sweep.series(skew, "robust");
        assert!(
            robust.last().unwrap().response_virtual_us < legacy.last().unwrap().response_virtual_us,
            "{skew}: robust lost to legacy at the cliff cell"
        );
    }

    // Global re-spray passes all but disappear under the robust path:
    // partition-wise spilled joins absorb the shortfall, so at most one
    // escalation survives across the whole grid.
    let robust_passes: u32 = sweep
        .points
        .iter()
        .filter(|p| p.mode == "robust")
        .map(|p| p.overflow_passes)
        .sum();
    assert!(
        robust_passes <= 1,
        "robust path escalated {robust_passes} times across the grid"
    );

    // Accounting invariants: the legacy path never touches the dynamic
    // counters, the robust path demonstrably spills, and both modes agree
    // on the (oracle-validated) result cardinality point by point. The
    // BNL safety net must not fire anywhere at this scale.
    assert!(sweep
        .points
        .iter()
        .filter(|p| p.mode == "legacy")
        .all(|p| p.pages_spilled == 0 && p.pages_restored == 0));
    assert!(sweep
        .points
        .iter()
        .any(|p| p.mode == "robust" && p.pages_spilled > 0));
    assert!(sweep.points.iter().all(|p| !p.bnl), "BNL fallback fired");
    for p in sweep.points.iter().filter(|p| p.mode == "legacy") {
        let twin = sweep
            .points
            .iter()
            .find(|q| q.mode == "robust" && q.skew == p.skew && q.memory_ratio == p.memory_ratio)
            .unwrap();
        assert_eq!(
            p.result_tuples, twin.result_tuples,
            "{}/{}: modes disagree on cardinality",
            p.skew, p.memory_ratio
        );
    }
}

/// The robust spill/restore and refinement paths ride the batched tuple
/// data plane (spill spools, restore re-admission, split-table rebuilds
/// all move `TupleBatch` arenas). Serial and pooled executors must agree
/// on every field of the report — response, per-phase ledgers, dynamic
/// spill counters — under the robust knobs for all three hash drivers,
/// including the cliff-side ratios where spills actually fire.
#[test]
fn robust_knobs_are_executor_invariant() {
    use gamma_core::{ExecConfig, WorkerPool};
    use std::sync::Arc;

    let w = Workload::scaled_nu(2_000, 200, 4.0);
    let pool = Arc::new(WorkerPool::new(3));
    for alg in [
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ] {
        for ratio in [0.6, 0.5] {
            let run = |exec: ExecConfig| {
                SweepBuilder::new(&w)
                    .on("normal", "normal")
                    .policy(OverflowPolicy::Optimistic)
                    .refined()
                    .dynamic_spill()
                    .exec(exec)
                    .run_one(alg, ratio)
            };
            let serial = run(ExecConfig::serial());
            let pooled = run(ExecConfig::pooled(Arc::clone(&pool)));
            // JoinReport derives Debug over every nested ledger field, so
            // formatted equality is full byte-identity of the report.
            assert_eq!(
                format!("{:?}", serial.report),
                format!("{:?}", pooled.report),
                "{} r{ratio}: robust-knob report differs between executors",
                alg.name()
            );
        }
    }
}

/// The robust knobs are wired through every hash driver, not just
/// Hybrid: Grace and Simple with refinement + dynamic spill produce the
/// same (oracle-validated) cardinality as their legacy runs.
#[test]
fn grace_and_simple_join_correctly_with_robust_knobs() {
    let w = Workload::scaled_nu(2_000, 200, 4.0);
    for alg in [Algorithm::GraceHash, Algorithm::SimpleHash] {
        let legacy = SweepBuilder::new(&w)
            .on("normal", "normal")
            .policy(OverflowPolicy::Optimistic)
            .run_one(alg, 0.6);
        let robust = SweepBuilder::new(&w)
            .on("normal", "normal")
            .policy(OverflowPolicy::Optimistic)
            .refined()
            .dynamic_spill()
            .run_one(alg, 0.6);
        assert_eq!(
            legacy.report.result_tuples,
            robust.report.result_tuples,
            "{}: robust knobs changed the result",
            alg.name()
        );
    }
}
