//! Property-based tests over the whole stack.
//!
//! These use hand-rolled deterministic case generators (the offline
//! `rand` stub, fixed seeds) instead of proptest, which cannot be
//! fetched in this environment. Each property runs a fixed number of
//! randomized cases plus targeted edge cases; failures print the case
//! seed so a case can be replayed in isolation.

use rand::prelude::*;

use gamma_core::hash::{hash_u32, JOIN_SEED};
use gamma_core::machine::{multiset_checksum, Declustering, MachineConfig};
use gamma_core::query::{Algorithm, JoinSpec, OverflowPolicy};
use gamma_core::tuple::{compose, Field};
use gamma_core::{run_join, Machine, Schema};
use gamma_des::{fifo_drain, Request, SharedServer, SimTime, Usage};
use gamma_wiss::btree::BPlusTree;
use gamma_wiss::{
    external_sort, BufferPool, ByteStream, DiskConfig, HeapScan, HeapWriter, SortConfig, SortCost,
    Volume,
};

/// Deterministic per-property case stream: property name -> base seed,
/// case index -> derived rng.
fn case_rng(property: &str, case: u64) -> StdRng {
    let mut seed = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
    for b in property.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn vec_u32(rng: &mut StdRng, max_len: usize, hi: u32) -> Vec<u32> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.gen_range(0..hi)).collect()
}

fn pad_schema() -> Schema {
    Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 28)])
}

fn mk_tuple(k: u32) -> Vec<u8> {
    let mut t = vec![0u8; 32];
    t[0..4].copy_from_slice(&k.to_le_bytes());
    t
}

/// Reference join over raw key multisets, with the engine's composition
/// convention (inner ‖ outer) and checksum.
fn model_join(inner: &[u32], outer: &[u32]) -> (u64, u64) {
    let mut tuples = 0u64;
    let mut checksum = 0u64;
    for &s in outer {
        for &r in inner {
            if r == s {
                tuples += 1;
                checksum = multiset_checksum(checksum, &compose(&mk_tuple(r), &mk_tuple(s)));
            }
        }
    }
    (tuples, checksum)
}

/// The flagship property: any of the four parallel algorithms, on any
/// random multiset of keys (duplicates included), at any memory
/// pressure, local or remote, filtered or not, produces exactly the
/// model join's result multiset.
#[test]
fn parallel_joins_equal_model_join() {
    for case in 0..24u64 {
        let mut rng = case_rng("parallel_joins_equal_model_join", case);
        let inner = vec_u32(&mut rng, 400, 500);
        let outer = vec_u32(&mut rng, 800, 500);
        let algorithm = Algorithm::ALL[rng.gen_range(0usize..4)];
        let mem_div = rng.gen_range(1u64..30);
        let remote = rng.gen_bool(0.5);
        let filter = rng.gen_bool(0.5);
        let optimistic = rng.gen_bool(0.5);

        let cfg = if remote && algorithm != Algorithm::SortMerge {
            MachineConfig::remote_8_plus_8()
        } else {
            MachineConfig::local_8()
        };
        let mut machine = Machine::new(cfg);
        let schema = pad_schema();
        let attr = schema.int_attr("k");
        let r = machine.load_relation(
            "r",
            schema.clone(),
            Declustering::Hashed { attr },
            inner.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let s = machine.load_relation(
            "s",
            schema.clone(),
            Declustering::Hashed { attr },
            outer.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let inner_bytes = machine.relation(r).data_bytes.max(32);
        let mut spec = JoinSpec::new(algorithm, r, s, attr, attr, (inner_bytes / mem_div).max(1));
        if remote && algorithm != Algorithm::SortMerge {
            spec.site = gamma_core::JoinSite::Remote;
        }
        spec.bit_filter = filter;
        if optimistic {
            spec.overflow_policy = OverflowPolicy::Optimistic;
        }
        let report = run_join(&mut machine, &spec);
        let (tuples, checksum) = model_join(&inner, &outer);
        assert_eq!(report.result_tuples, tuples, "case {case}: cardinality");
        assert_eq!(report.result_checksum, checksum, "case {case}: contents");
    }
}

/// External sort returns a sorted permutation of its input for any
/// record multiset and any (tiny) memory budget.
#[test]
fn external_sort_sorts_permutations() {
    for case in 0..24u64 {
        let mut rng = case_rng("external_sort_sorts_permutations", case);
        let keys = vec_u32(&mut rng, 600, 10_000);
        let mem_kb = rng.gen_range(1u64..64);

        let mut vol = Volume::new();
        let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 4);
        let mut u = Usage::ZERO;
        let mut w = HeapWriter::create(&mut vol, 8192);
        for &k in &keys {
            w.push(&mut vol, &mut pool, &mut u, &mk_tuple(k));
        }
        let input = w.finish(&mut vol, &mut pool, &mut u);
        let cfg = SortConfig {
            mem_bytes: mem_kb * 1024,
            page_bytes: 8192,
        };
        let key = |rec: &[u8]| u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let (out, stats) = external_sort(
            &mut vol,
            &mut pool,
            input,
            &key,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        let got: Vec<u32> = HeapScan::open(&vol, out)
            .collect_all(&mut pool, &mut u)
            .iter()
            .map(|r| key(r))
            .collect();
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}: not a sorted permutation");
        assert_eq!(stats.records as usize, keys.len(), "case {case}");
    }
}

/// Appendix A alignment law: for any disk count and bucket count, a
/// tuple whose home node is `h mod D` is routed back to its home node
/// by the Grace partitioning split table.
#[test]
fn grace_split_tables_preserve_locality() {
    use gamma_core::split::{PartitioningSplitTable, Route};
    for case in 0..200u64 {
        let mut rng = case_rng("grace_split_tables_preserve_locality", case);
        let disks = rng.gen_range(1usize..12);
        let buckets = rng.gen_range(1usize..12);
        let h = rng.next_u64();
        let nodes: Vec<usize> = (0..disks).collect();
        let t = PartitioningSplitTable::grace(&nodes, buckets);
        match t.route(h) {
            Route::Spool { node, .. } => {
                assert_eq!(node, (h % disks as u64) as usize, "case {case}")
            }
            Route::Join { .. } => panic!("case {case}: grace tables never route to join"),
        }
    }
}

/// The bucket analyzer always terminates with a bucket count whose
/// split table lets every bucket reach every join node.
#[test]
fn bucket_analyzer_guarantees_coverage() {
    use gamma_core::split::{bucket_analyzer, JoiningSplitTable, PartitioningSplitTable, Route};
    for case in 0..48u64 {
        let mut rng = case_rng("bucket_analyzer_guarantees_coverage", case);
        let disks = rng.gen_range(1usize..7);
        let joins = rng.gen_range(1usize..9);
        let min_buckets = rng.gen_range(1usize..6);
        let grace = rng.gen_bool(0.5);

        let n = bucket_analyzer(grace, disks, joins, min_buckets);
        assert!(n >= min_buckets, "case {case}");
        let disk_nodes: Vec<usize> = (0..disks).collect();
        let join_nodes: Vec<usize> = (100..100 + joins).collect();
        let part = if grace {
            PartitioningSplitTable::grace(&disk_nodes, n)
        } else {
            PartitioningSplitTable::hybrid(&join_nodes, &disk_nodes, n)
        };
        let jt = JoiningSplitTable::new(join_nodes.clone());
        // Per-bucket join-node coverage under re-splitting.
        let mut cov: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            Default::default();
        for h in 0..20_000u64 {
            if let Route::Spool { bucket, .. } = part.route(h) {
                cov.entry(bucket).or_default().insert(jt.route(h));
            }
        }
        // Single bucket with disks <= joins is the analyzer's fast path; it
        // has no spooled buckets for hybrid.
        for (bucket, reached) in cov {
            assert_eq!(
                reached.len(),
                joins,
                "case {case}: bucket {bucket} starves with N={n} D={disks} J={joins} grace={grace}"
            );
        }
    }
}

/// Skew-aware refinement partitions the full hash range exactly once:
/// the refined table owns every residue class `mod entries × expand`
/// through exactly one entry, cold base classes keep their destination
/// bit-for-bit, and hot classes are only dealt across destinations the
/// base table already used (so no tuple can reach a node the query never
/// scheduled).
#[test]
fn refined_split_tables_cover_the_hash_range_exactly_once() {
    use gamma_core::split::{PartitioningSplitTable, RefineCfg};
    for case in 0..120u64 {
        let mut rng = case_rng(
            "refined_split_tables_cover_the_hash_range_exactly_once",
            case,
        );
        let disks = rng.gen_range(1usize..8);
        let joins = rng.gen_range(1usize..8);
        let buckets = rng.gen_range(1usize..6);
        let grace = rng.gen_bool(0.5);
        let disk_nodes: Vec<usize> = (0..disks).collect();
        let join_nodes: Vec<usize> = (100..100 + joins).collect();
        let base = if grace {
            PartitioningSplitTable::grace(&disk_nodes, buckets)
        } else {
            PartitioningSplitTable::hybrid(&join_nodes, &disk_nodes, buckets)
        };
        let e = base.entries();

        // A uniform histogram must not refine: the common case pays for
        // nothing.
        let cfg = RefineCfg::default();
        assert!(
            base.refine(&vec![10u64; e], &cfg).is_none(),
            "case {case}: uniform histogram refined"
        );

        // Now overload a random cell against light random noise. Tables
        // with fewer than three entries can never refine under the 2×
        // default threshold: one entry is always exactly the mean, and
        // of two entries even the one holding *everything* is exactly
        // twice the mean, never strictly above.
        let mut hist: Vec<u64> = (0..e).map(|_| rng.gen_range(0..4u64)).collect();
        let hot_cell = rng.gen_range(0..e);
        hist[hot_cell] += 64 * e as u64;
        if e < 3 {
            assert!(base.refine(&hist, &cfg).is_none(), "case {case}");
            continue;
        }
        let refined = base
            .refine(&hist, &cfg)
            .expect("a cell 64× the mean is hot");
        let m = refined.entries();
        assert_eq!(m, e * cfg.expand, "case {case}: refined size");

        // Destination pools of the base table, for legality checks.
        let join_pool: std::collections::HashSet<_> = base
            .raw()
            .iter()
            .zip(base.raw_join_sites())
            .filter(|(_, js)| js.is_some())
            .map(|(en, js)| (en.node, js.unwrap()))
            .collect();
        let spool_pool: std::collections::HashSet<_> = base
            .raw()
            .iter()
            .zip(base.raw_join_sites())
            .filter(|(_, js)| js.is_none())
            .map(|(en, _)| (en.node, en.bucket))
            .collect();

        // Walk the refined entries in residue order: every residue class
        // `mod m` is owned by exactly one entry (the table *is* the
        // partition), cold classes are bit-for-bit the base entry, and
        // hot sub-ranges stay inside the base destination pools.
        assert_eq!(refined.raw().len(), m, "case {case}");
        assert_eq!(refined.raw_join_sites().len(), m, "case {case}");
        for (j, (&en, &js)) in refined
            .raw()
            .iter()
            .zip(refined.raw_join_sites())
            .enumerate()
        {
            let c = j % e;
            if c != hot_cell {
                assert_eq!(en, base.raw()[c], "case {case}: cold entry {j}");
                assert_eq!(js, base.raw_join_sites()[c], "case {case}: cold site {j}");
            } else if let Some(site) = js {
                assert!(
                    join_pool.contains(&(en.node, site)),
                    "case {case}: hot entry {j} routed outside the join pool"
                );
            } else {
                assert!(
                    spool_pool.contains(&(en.node, en.bucket)),
                    "case {case}: hot entry {j} routed outside the spool pool"
                );
            }
        }

        // The partition extends to the whole 64-bit hash range: any h is
        // routed exactly as its residue class, and equal hashes (equal
        // keys) always land together — the co-location hash join needs.
        for _ in 0..64 {
            let h = rng.next_u64();
            assert_eq!(refined.route(h), refined.route(h % m as u64), "case {case}");
        }
    }
}

/// Bit filters never produce false negatives.
#[test]
fn bit_filter_no_false_negatives() {
    use gamma_core::bitfilter::BitFilter;
    for case in 0..48u64 {
        let mut rng = case_rng("bit_filter_no_false_negatives", case);
        let len = rng.gen_range(0usize..300);
        let members: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let bits = rng.gen_range(64u64..4096);
        let salt = rng.next_u64();
        let mut f = BitFilter::new(bits, salt);
        for &m in &members {
            f.set(m);
        }
        for &m in &members {
            assert!(f.test(m), "case {case}: false negative for {m}");
        }
    }
}

/// The B+-tree agrees with a BTreeMap model on membership and range
/// queries under any insertion order.
#[test]
fn btree_matches_model() {
    for case in 0..24u64 {
        let mut rng = case_rng("btree_matches_model", case);
        let len = rng.gen_range(0usize..800);
        let entries: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.gen_range(0u64..2_000), rng.next_u32()))
            .collect();
        let mut tree: BPlusTree<u64, u32> = BPlusTree::new();
        let mut model: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        for &(k, v) in &entries {
            tree.insert(k, v);
            model.entry(k).or_default().push(v);
        }
        assert_eq!(tree.len(), entries.len(), "case {case}");
        for k in (0..2_000).step_by(37) {
            assert_eq!(
                tree.get(&k).is_some(),
                model.contains_key(&k),
                "case {case}"
            );
        }
        let lo = 200u64;
        let hi = 900u64;
        let got: usize = tree.range(&lo, &hi).len();
        let want: usize = model.range(lo..=hi).map(|(_, vs)| vs.len()).sum();
        assert_eq!(got, want, "case {case}: range count");
    }
}

/// Fabric conservation: every packet sent is received exactly once,
/// and short-circuited messages never touch the ring.
#[test]
fn fabric_conserves_packets() {
    use gamma_net::{Fabric, RingConfig};
    for case in 0..48u64 {
        let mut rng = case_rng("fabric_conserves_packets", case);
        let len = rng.gen_range(0usize..300);
        let sends: Vec<(usize, usize, u64)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(0usize..4),
                    rng.gen_range(0usize..4),
                    rng.gen_range(1u64..2048),
                )
            })
            .collect();
        let mut f = Fabric::new(RingConfig::gamma_1989(), 4);
        let mut u = vec![Usage::ZERO; 4];
        for &(src, dst, bytes) in &sends {
            f.send_tuple(&mut u, src, dst, bytes);
        }
        f.flush(&mut u);
        assert!(f.is_drained(), "case {case}");
        let sent: u64 = u.iter().map(|x| x.counts.packets_sent).sum();
        let recv: u64 = u.iter().map(|x| x.counts.packets_recv).sum();
        assert_eq!(sent, recv, "case {case}: packet conservation");
        let local_bytes: u64 = u.iter().map(|x| x.ring_bytes).sum();
        let remote_payload: u64 = sends
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|&(_, _, b)| b)
            .sum();
        assert_eq!(local_bytes, remote_payload, "case {case}: ring bytes");
    }
}

/// Heap files round-trip any batch of variable-length records.
#[test]
fn heap_file_roundtrip() {
    for case in 0..24u64 {
        let mut rng = case_rng("heap_file_roundtrip", case);
        let n = rng.gen_range(0usize..200);
        let recs: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = rng.gen_range(1usize..300);
                (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
            })
            .collect();
        let mut vol = Volume::new();
        let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 4);
        let mut u = Usage::ZERO;
        let mut w = HeapWriter::create(&mut vol, 8192);
        for r in &recs {
            w.push(&mut vol, &mut pool, &mut u, r);
        }
        let f = w.finish(&mut vol, &mut pool, &mut u);
        let got = HeapScan::open(&vol, f).collect_all(&mut pool, &mut u);
        assert_eq!(got, recs, "case {case}");
    }
}

/// The B+-tree with interleaved inserts and removes agrees with a
/// multiset model.
#[test]
fn btree_insert_remove_matches_model() {
    for case in 0..24u64 {
        let mut rng = case_rng("btree_insert_remove_matches_model", case);
        let len = rng.gen_range(0usize..600);
        let ops: Vec<(bool, u64)> = (0..len)
            .map(|_| (rng.gen_bool(0.5), rng.gen_range(0u64..64)))
            .collect();
        let mut tree: BPlusTree<u64, u32> = BPlusTree::new();
        let mut model: std::collections::BTreeMap<u64, u32> = Default::default();
        for (i, &(insert, k)) in ops.iter().enumerate() {
            if insert {
                tree.insert(k, i as u32);
                *model.entry(k).or_default() += 1;
            } else {
                let got = tree.remove(&k).is_some();
                let want = match model.get_mut(&k) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&k);
                        }
                        true
                    }
                    _ => false,
                };
                assert_eq!(got, want, "case {case}: remove({k}) at op {i}");
            }
        }
        let total: u32 = model.values().sum();
        assert_eq!(tree.len() as u32, total, "case {case}");
        for k in 0..64u64 {
            assert_eq!(
                tree.range(&k, &k).len() as u32,
                model.get(&k).copied().unwrap_or(0),
                "case {case}: key {k}"
            );
        }
    }
}

/// Byte-stream files behave exactly like a growable Vec<u8> under any
/// interleaving of writes, appends and reads.
#[test]
fn byte_stream_matches_vec_model() {
    for case in 0..24u64 {
        let mut rng = case_rng("byte_stream_matches_vec_model", case);
        let n = rng.gen_range(0usize..40);
        let ops: Vec<(u8, u64, Vec<u8>)> = (0..n)
            .map(|_| {
                let op = rng.gen_range(0u32..3) as u8;
                let offset = rng.gen_range(0u64..40_000);
                let len = rng.gen_range(0usize..600);
                let data = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
                (op, offset, data)
            })
            .collect();
        let mut vol = Volume::new();
        let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 4);
        let mut u = Usage::ZERO;
        let mut s = ByteStream::create(&mut vol, 8192);
        let mut model: Vec<u8> = Vec::new();
        for (op, offset, data) in &ops {
            match op {
                0 => {
                    s.append(&mut vol, &mut pool, &mut u, data);
                    model.extend_from_slice(data);
                }
                1 => {
                    s.write_at(&mut vol, &mut pool, &mut u, *offset, data);
                    if !data.is_empty() {
                        let end = *offset as usize + data.len();
                        if model.len() < end {
                            model.resize(end, 0);
                        }
                        model[*offset as usize..end].copy_from_slice(data);
                    }
                }
                _ => {
                    let got = s.read_at(&vol, &mut pool, &mut u, *offset, data.len());
                    let lo = (*offset as usize).min(model.len());
                    let hi = (lo + data.len()).min(model.len());
                    assert_eq!(&got, &model[lo..hi], "case {case}: read");
                }
            }
            assert_eq!(s.len(), model.len() as u64, "case {case}: length");
        }
        let all = s.read_at(&vol, &mut pool, &mut u, 0, model.len());
        assert_eq!(all, model, "case {case}: full contents");
    }
}

/// Random issue-ordered device request log, mimicking what a ledger
/// produces: issue offsets are the node's monotone CPU progress.
fn random_request_log(rng: &mut StdRng, max_len: usize) -> Vec<Request> {
    let len = rng.gen_range(0..max_len + 1);
    let mut issue = 0u64;
    (0..len)
        .map(|_| {
            issue += rng.gen_range(0u64..30);
            Request {
                issue: SimTime::from_us(issue),
                service: SimTime::from_us(rng.gen_range(1u64..25)),
            }
        })
        .collect()
}

/// The event-kernel FIFO drain agrees with the analytic single-server
/// recurrence on any issue-ordered log, serves strictly in order, never
/// idles while a request is pending, and is work-conserving (busy + idle
/// exactly partitions `[0, completion]`).
#[test]
fn fifo_queue_is_work_conserving_and_never_idles_with_backlog() {
    for case in 0..64u64 {
        let mut rng = case_rng(
            "fifo_queue_is_work_conserving_and_never_idles_with_backlog",
            case,
        );
        let log = random_request_log(&mut rng, 48);
        let drained = fifo_drain(&log);

        // Reference recurrence: start = max(issue, previous completion).
        let mut prev = SimTime::ZERO;
        let mut wait = SimTime::ZERO;
        let mut max_wait = SimTime::ZERO;
        let mut service = SimTime::ZERO;
        let mut idle = SimTime::ZERO;
        for r in &log {
            let start = prev.max(r.issue);
            if start > prev {
                // The server went idle — legal only because nothing was
                // pending (the next request had not been issued yet).
                assert!(r.issue > prev, "case {case}: idled with a pending request");
                idle += start - prev;
            }
            wait += start - r.issue;
            max_wait = max_wait.max(start - r.issue);
            service += r.service;
            prev = start + r.service;
        }
        assert_eq!(drained.completion, prev, "case {case}: completion");
        assert_eq!(drained.wait, wait, "case {case}: total wait");
        assert_eq!(drained.max_wait, max_wait, "case {case}: max wait");
        assert_eq!(drained.service, service, "case {case}: service sum");
        assert_eq!(drained.requests, log.len() as u64, "case {case}: count");
        // Work conservation: every instant up to completion is either
        // service or a provably-empty-queue idle gap.
        assert_eq!(
            drained.completion,
            service + idle,
            "case {case}: work conservation"
        );

        // A fresh SharedServer fed the same log at its issue offsets is the
        // same queue, and FIFO completions come back in submission order.
        let mut server = SharedServer::new();
        let mut last_done = SimTime::ZERO;
        for r in &log {
            let done = server.submit(r.issue, r.service);
            assert!(done >= last_done, "case {case}: completions out of order");
            last_done = done;
        }
        assert_eq!(server.stats(), drained, "case {case}: shared vs drain");
        assert_eq!(server.free_at(), drained.completion, "case {case}: free_at");
    }
}

/// A `SharedServer` fed several phases' logs at absolute arrival times is
/// exactly one FIFO drain of the merged log — and the backlog it carries
/// across phase boundaries can only add waiting relative to draining each
/// phase on a fresh (idle-at-phase-start) server.
#[test]
fn shared_server_drains_multi_phase_logs_like_one_merged_log() {
    for case in 0..64u64 {
        let mut rng = case_rng(
            "shared_server_drains_multi_phase_logs_like_one_merged_log",
            case,
        );
        let phases = rng.gen_range(1usize..6);
        let mut server = SharedServer::new();
        let mut merged: Vec<Request> = Vec::new();
        let mut isolated_wait = SimTime::ZERO;
        let mut clock = 0u64; // last absolute arrival submitted
        for _ in 0..phases {
            let phase_start = clock + rng.gen_range(0u64..80);
            let log = random_request_log(&mut rng, 16);
            isolated_wait += fifo_drain(&log).wait;
            for r in &log {
                let arrival = phase_start + r.issue.as_us();
                merged.push(Request {
                    issue: SimTime::from_us(arrival),
                    service: r.service,
                });
                server.submit(SimTime::from_us(arrival), r.service);
                clock = arrival;
            }
        }
        let drained = fifo_drain(&merged);
        assert_eq!(
            server.stats(),
            drained,
            "case {case}: shared vs merged drain"
        );
        assert_eq!(server.free_at(), drained.completion, "case {case}: free_at");
        // Cross-phase backlog is monotone: a server that may still be busy
        // at a phase boundary waits at least as long as per-phase drains
        // that start idle.
        assert!(
            server.stats().wait >= isolated_wait,
            "case {case}: carried backlog reduced waiting ({} < {isolated_wait})",
            server.stats().wait
        );
    }
}

/// The randomizing hash is stable across moduli as Appendix A requires:
/// `(h mod k·d) mod d == h mod d` for all tuples and table sizes.
#[test]
fn hash_mod_alignment() {
    for case in 0..500u64 {
        let mut rng = case_rng("hash_mod_alignment", case);
        let v = rng.next_u32();
        let d = rng.gen_range(1u64..16);
        let k = rng.gen_range(1u64..16);
        let h = hash_u32(JOIN_SEED, v);
        assert_eq!((h % (k * d)) % d, h % d, "case {case}");
    }
}

/// Random select→join→aggregate plans agree with a direct model
/// computation over the raw keys.
#[test]
fn plans_match_model() {
    use gamma_core::operators::AggFn;
    use gamma_core::planner::{execute, Plan, PlanConfig};

    for case in 0..16u64 {
        let mut rng = case_rng("plans_match_model", case);
        let inner = {
            let mut v = vec_u32(&mut rng, 149, 64);
            v.push(rng.gen_range(0u32..64)); // 1..150 non-empty
            v
        };
        let outer = {
            let mut v = vec_u32(&mut rng, 299, 64);
            v.push(rng.gen_range(0u32..64));
            v
        };
        let sel_hi = rng.gen_range(0u32..64);
        let mem_div = rng.gen_range(1u64..8);
        let algorithm = Algorithm::ALL[rng.gen_range(0usize..4)];

        let mut machine = Machine::new(MachineConfig::local_8());
        let schema = pad_schema();
        let attr = schema.int_attr("k");
        let r = machine.load_relation(
            "r",
            schema.clone(),
            Declustering::Hashed { attr },
            inner.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let s = machine.load_relation(
            "s",
            schema.clone(),
            Declustering::Hashed { attr },
            outer.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                inner: Box::new(Plan::Select {
                    input: Box::new(Plan::Scan(r)),
                    attr: "k".into(),
                    lo: 0,
                    hi: sel_hi,
                }),
                outer: Box::new(Plan::Scan(s)),
                inner_attr: "k".into(),
                outer_attr: "k".into(),
                algorithm: Some(algorithm),
            }),
            // After a possible inner/outer swap the join schema prefixes
            // may flip, so group on whichever k survives; both sides carry
            // the same key value on a match, so l.k == r.k.
            group_by: "l.k".into(),
            attr: "l.k".into(),
            f: AggFn::Count,
        };
        let cfg = PlanConfig {
            memory_bytes: (machine.relation(r).data_bytes / mem_div).max(1),
            site: gamma_core::JoinSite::Local,
            bit_filter: true,
        };
        let report = execute(&mut machine, &plan, &cfg);

        // Model: count matches per key after the selection.
        let mut model: std::collections::BTreeMap<u32, u64> = Default::default();
        for &sk in &outer {
            let matches = inner.iter().filter(|&&rk| rk == sk && rk <= sel_hi).count() as u64;
            if matches > 0 {
                *model.entry(sk).or_default() += matches;
            }
        }
        let want_groups = model.len() as u64;
        let want_total: u64 = model.values().sum();
        assert_eq!(report.tuples, want_groups, "case {case}: group count");
        assert_eq!(
            report.stages[1].tuples, want_total,
            "case {case}: join cardinality"
        );
        machine.drop_relation(report.output);
    }
}
