//! Property-based tests over the whole stack.

use proptest::collection::vec;
use proptest::prelude::*;

use gamma_core::hash::{hash_u32, JOIN_SEED};
use gamma_core::machine::{multiset_checksum, Declustering, MachineConfig};
use gamma_core::query::{Algorithm, JoinSpec, OverflowPolicy};
use gamma_core::tuple::{compose, Field};
use gamma_core::{run_join, Machine, Schema};
use gamma_des::Usage;
use gamma_wiss::btree::BPlusTree;
use gamma_wiss::{
    external_sort, BufferPool, ByteStream, DiskConfig, HeapScan, HeapWriter, SortConfig, SortCost,
    Volume,
};

fn pad_schema() -> Schema {
    Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 28)])
}

fn mk_tuple(k: u32) -> Vec<u8> {
    let mut t = vec![0u8; 32];
    t[0..4].copy_from_slice(&k.to_le_bytes());
    t
}

/// Reference join over raw key multisets, with the engine's composition
/// convention (inner ‖ outer) and checksum.
fn model_join(inner: &[u32], outer: &[u32]) -> (u64, u64) {
    let mut tuples = 0u64;
    let mut checksum = 0u64;
    for &s in outer {
        for &r in inner {
            if r == s {
                tuples += 1;
                checksum = multiset_checksum(checksum, &compose(&mk_tuple(r), &mk_tuple(s)));
            }
        }
    }
    (tuples, checksum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship property: any of the four parallel algorithms, on any
    /// random multiset of keys (duplicates included), at any memory
    /// pressure, local or remote, filtered or not, produces exactly the
    /// model join's result multiset.
    #[test]
    fn parallel_joins_equal_model_join(
        inner in vec(0u32..500, 0..400),
        outer in vec(0u32..500, 0..800),
        alg_pick in 0usize..4,
        mem_div in 1u64..30,
        remote in any::<bool>(),
        filter in any::<bool>(),
        optimistic in any::<bool>(),
    ) {
        let algorithm = Algorithm::ALL[alg_pick];
        let cfg = if remote && algorithm != Algorithm::SortMerge {
            MachineConfig::remote_8_plus_8()
        } else {
            MachineConfig::local_8()
        };
        let mut machine = Machine::new(cfg);
        let schema = pad_schema();
        let attr = schema.int_attr("k");
        let r = machine.load_relation(
            "r",
            schema.clone(),
            Declustering::Hashed { attr },
            inner.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let s = machine.load_relation(
            "s",
            schema.clone(),
            Declustering::Hashed { attr },
            outer.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let inner_bytes = machine.relation(r).data_bytes.max(32);
        let mut spec = JoinSpec::new(algorithm, r, s, attr, attr, (inner_bytes / mem_div).max(1));
        if remote && algorithm != Algorithm::SortMerge {
            spec.site = gamma_core::JoinSite::Remote;
        }
        spec.bit_filter = filter;
        if optimistic {
            spec.overflow_policy = OverflowPolicy::Optimistic;
        }
        let report = run_join(&mut machine, &spec);
        let (tuples, checksum) = model_join(&inner, &outer);
        prop_assert_eq!(report.result_tuples, tuples);
        prop_assert_eq!(report.result_checksum, checksum);
    }

    /// External sort returns a sorted permutation of its input for any
    /// record multiset and any (tiny) memory budget.
    #[test]
    fn external_sort_sorts_permutations(
        keys in vec(0u32..10_000, 0..600),
        mem_kb in 1u64..64,
    ) {
        let mut vol = Volume::new();
        let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 4);
        let mut u = Usage::ZERO;
        let mut w = HeapWriter::create(&mut vol, 8192);
        for &k in &keys {
            w.push(&mut vol, &mut pool, &mut u, &mk_tuple(k));
        }
        let input = w.finish(&mut vol, &mut pool, &mut u);
        let cfg = SortConfig { mem_bytes: mem_kb * 1024, page_bytes: 8192 };
        let key = |rec: &[u8]| u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let (out, stats) = external_sort(&mut vol, &mut pool, input, &key, cfg, &SortCost::default(), &mut u);
        let got: Vec<u32> = HeapScan::open(&vol, out)
            .collect_all(&mut pool, &mut u)
            .iter()
            .map(|r| key(r))
            .collect();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(stats.records as usize, keys.len());
    }

    /// Appendix A alignment law: for any disk count and bucket count, a
    /// tuple whose home node is `h mod D` is routed back to its home node
    /// by the Grace partitioning split table.
    #[test]
    fn grace_split_tables_preserve_locality(
        disks in 1usize..12,
        buckets in 1usize..12,
        h in any::<u64>(),
    ) {
        use gamma_core::split::{PartitioningSplitTable, Route};
        let nodes: Vec<usize> = (0..disks).collect();
        let t = PartitioningSplitTable::grace(&nodes, buckets);
        match t.route(h) {
            Route::Spool { node, .. } => prop_assert_eq!(node, (h % disks as u64) as usize),
            Route::Join { .. } => prop_assert!(false, "grace tables never route to join"),
        }
    }

    /// The bucket analyzer always terminates with a bucket count whose
    /// split table lets every bucket reach every join node.
    #[test]
    fn bucket_analyzer_guarantees_coverage(
        disks in 1usize..7,
        joins in 1usize..9,
        min_buckets in 1usize..6,
        grace in any::<bool>(),
    ) {
        use gamma_core::split::{bucket_analyzer, JoiningSplitTable, PartitioningSplitTable, Route};
        let n = bucket_analyzer(grace, disks, joins, min_buckets);
        prop_assert!(n >= min_buckets);
        let disk_nodes: Vec<usize> = (0..disks).collect();
        let join_nodes: Vec<usize> = (100..100 + joins).collect();
        let part = if grace {
            PartitioningSplitTable::grace(&disk_nodes, n)
        } else {
            PartitioningSplitTable::hybrid(&join_nodes, &disk_nodes, n)
        };
        let jt = JoiningSplitTable::new(join_nodes.clone());
        // Per-bucket join-node coverage under re-splitting.
        let mut cov: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            Default::default();
        for h in 0..20_000u64 {
            if let Route::Spool { bucket, .. } = part.route(h) {
                cov.entry(bucket).or_default().insert(jt.route(h));
            }
        }
        // Single bucket with disks <= joins is the analyzer's fast path; it
        // has no spooled buckets for hybrid.
        for (bucket, reached) in cov {
            prop_assert_eq!(
                reached.len(),
                joins,
                "bucket {} starves with N={} D={} J={} grace={}",
                bucket, n, disks, joins, grace
            );
        }
    }

    /// Bit filters never produce false negatives.
    #[test]
    fn bit_filter_no_false_negatives(
        members in vec(any::<u32>(), 0..300),
        bits in 64u64..4096,
        salt in any::<u64>(),
    ) {
        use gamma_core::bitfilter::BitFilter;
        let mut f = BitFilter::new(bits, salt);
        for &m in &members {
            f.set(m);
        }
        for &m in &members {
            prop_assert!(f.test(m));
        }
    }

    /// The B+-tree agrees with a BTreeMap model on membership and range
    /// queries under any insertion order.
    #[test]
    fn btree_matches_model(entries in vec((0u64..2_000, any::<u32>()), 0..800)) {
        let mut tree: BPlusTree<u64, u32> = BPlusTree::new();
        let mut model: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        for &(k, v) in &entries {
            tree.insert(k, v);
            model.entry(k).or_default().push(v);
        }
        prop_assert_eq!(tree.len(), entries.len());
        for k in (0..2_000).step_by(37) {
            prop_assert_eq!(tree.get(&k).is_some(), model.contains_key(&k));
        }
        let lo = 200u64;
        let hi = 900u64;
        let got: usize = tree.range(&lo, &hi).len();
        let want: usize = model.range(lo..=hi).map(|(_, vs)| vs.len()).sum();
        prop_assert_eq!(got, want);
    }

    /// Fabric conservation: every packet sent is received exactly once,
    /// and short-circuited messages never touch the ring.
    #[test]
    fn fabric_conserves_packets(
        sends in vec((0usize..4, 0usize..4, 1u64..2048), 0..300),
    ) {
        use gamma_net::{Fabric, RingConfig};
        let mut f = Fabric::new(RingConfig::gamma_1989(), 4);
        let mut u = vec![Usage::ZERO; 4];
        for &(src, dst, bytes) in &sends {
            f.send_tuple(&mut u, src, dst, bytes);
        }
        f.flush(&mut u);
        prop_assert!(f.is_drained());
        let sent: u64 = u.iter().map(|x| x.counts.packets_sent).sum();
        let recv: u64 = u.iter().map(|x| x.counts.packets_recv).sum();
        prop_assert_eq!(sent, recv);
        let local_bytes: u64 = u
            .iter()
            .enumerate()
            .map(|(n, x)| {
                let _ = n;
                x.ring_bytes
            })
            .sum();
        let remote_payload: u64 = sends
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|&(_, _, b)| b)
            .sum();
        prop_assert_eq!(local_bytes, remote_payload);
    }

    /// Heap files round-trip any batch of variable-length records.
    #[test]
    fn heap_file_roundtrip(recs in vec(vec(any::<u8>(), 1..300), 0..200)) {
        let mut vol = Volume::new();
        let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 4);
        let mut u = Usage::ZERO;
        let mut w = HeapWriter::create(&mut vol, 8192);
        for r in &recs {
            w.push(&mut vol, &mut pool, &mut u, r);
        }
        let f = w.finish(&mut vol, &mut pool, &mut u);
        let got = HeapScan::open(&vol, f).collect_all(&mut pool, &mut u);
        prop_assert_eq!(got, recs);
    }

    /// The B+-tree with interleaved inserts and removes agrees with a
    /// multiset model.
    #[test]
    fn btree_insert_remove_matches_model(
        ops in vec((any::<bool>(), 0u64..64), 0..600),
    ) {
        let mut tree: BPlusTree<u64, u32> = BPlusTree::new();
        let mut model: std::collections::BTreeMap<u64, u32> = Default::default();
        for (i, &(insert, k)) in ops.iter().enumerate() {
            if insert {
                tree.insert(k, i as u32);
                *model.entry(k).or_default() += 1;
            } else {
                let got = tree.remove(&k).is_some();
                let want = match model.get_mut(&k) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        if *c == 0 {
                            model.remove(&k);
                        }
                        true
                    }
                    _ => false,
                };
                prop_assert_eq!(got, want);
            }
        }
        let total: u32 = model.values().sum();
        prop_assert_eq!(tree.len() as u32, total);
        for k in 0..64u64 {
            prop_assert_eq!(
                tree.range(&k, &k).len() as u32,
                model.get(&k).copied().unwrap_or(0)
            );
        }
    }

    /// Byte-stream files behave exactly like a growable Vec<u8> under any
    /// interleaving of writes, appends and reads.
    #[test]
    fn byte_stream_matches_vec_model(
        ops in vec((0u8..3, 0u64..40_000, vec(any::<u8>(), 0..600)), 0..40),
    ) {
        let mut vol = Volume::new();
        let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 4);
        let mut u = Usage::ZERO;
        let mut s = ByteStream::create(&mut vol, 8192);
        let mut model: Vec<u8> = Vec::new();
        for (op, offset, data) in &ops {
            match op {
                0 => {
                    s.append(&mut vol, &mut pool, &mut u, data);
                    model.extend_from_slice(data);
                }
                1 => {
                    s.write_at(&mut vol, &mut pool, &mut u, *offset, data);
                    if !data.is_empty() {
                        let end = *offset as usize + data.len();
                        if model.len() < end {
                            model.resize(end, 0);
                        }
                        model[*offset as usize..end].copy_from_slice(data);
                    }
                }
                _ => {
                    let got = s.read_at(&vol, &mut pool, &mut u, *offset, data.len());
                    let lo = (*offset as usize).min(model.len());
                    let hi = (lo + data.len()).min(model.len());
                    prop_assert_eq!(&got, &model[lo..hi]);
                }
            }
            prop_assert_eq!(s.len(), model.len() as u64);
        }
        let all = s.read_at(&vol, &mut pool, &mut u, 0, model.len());
        prop_assert_eq!(all, model);
    }

    /// The randomizing hash is stable across moduli as Appendix A requires:
    /// `(h mod k·d) mod d == h mod d` for all tuples and table sizes.
    #[test]
    fn hash_mod_alignment(v in any::<u32>(), d in 1u64..16, k in 1u64..16) {
        let h = hash_u32(JOIN_SEED, v);
        prop_assert_eq!((h % (k * d)) % d, h % d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random select→join→aggregate plans agree with a direct model
    /// computation over the raw keys.
    #[test]
    fn plans_match_model(
        inner in vec(0u32..64, 1..150),
        outer in vec(0u32..64, 1..300),
        sel_hi in 0u32..64,
        mem_div in 1u64..8,
        alg_pick in 0usize..4,
    ) {
        use gamma_core::operators::AggFn;
        use gamma_core::planner::{execute, Plan, PlanConfig};

        let algorithm = Algorithm::ALL[alg_pick];
        let mut machine = Machine::new(MachineConfig::local_8());
        let schema = pad_schema();
        let attr = schema.int_attr("k");
        let r = machine.load_relation(
            "r",
            schema.clone(),
            Declustering::Hashed { attr },
            inner.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let s = machine.load_relation(
            "s",
            schema.clone(),
            Declustering::Hashed { attr },
            outer.iter().map(|&k| mk_tuple(k)).collect::<Vec<_>>(),
        );
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                inner: Box::new(Plan::Select {
                    input: Box::new(Plan::Scan(r)),
                    attr: "k".into(),
                    lo: 0,
                    hi: sel_hi,
                }),
                outer: Box::new(Plan::Scan(s)),
                inner_attr: "k".into(),
                outer_attr: "k".into(),
                algorithm: Some(algorithm),
            }),
            // After a possible inner/outer swap the join schema prefixes
            // may flip, so group on whichever k survives; both sides carry
            // the same key value on a match, so l.k == r.k.
            group_by: "l.k".into(),
            attr: "l.k".into(),
            f: AggFn::Count,
        };
        let cfg = PlanConfig {
            memory_bytes: (machine.relation(r).data_bytes / mem_div).max(1),
            site: gamma_core::JoinSite::Local,
            bit_filter: true,
        };
        let report = execute(&mut machine, &plan, &cfg);

        // Model: count matches per key after the selection.
        let mut model: std::collections::BTreeMap<u32, u64> = Default::default();
        for &sk in &outer {
            let matches = inner.iter().filter(|&&rk| rk == sk && rk <= sel_hi).count() as u64;
            if matches > 0 {
                *model.entry(sk).or_default() += matches;
            }
        }
        let want_groups = model.len() as u64;
        let want_total: u64 = model.values().sum();
        prop_assert_eq!(report.tuples, want_groups, "group count");
        prop_assert_eq!(
            report.stages[1].tuples, want_total,
            "join cardinality"
        );
        machine.drop_relation(report.output);
    }
}
