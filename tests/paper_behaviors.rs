//! Qualitative reproduction tests: every load-bearing claim of the paper's
//! evaluation section, asserted on a 1/5-scale workload (20,000 × 2,000
//! tuples). The full-scale sweeps live in the `figures` binary and
//! EXPERIMENTS.md; these tests pin the *shapes* so a regression in the
//! engine or the cost model fails CI.

use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::Algorithm;
use std::sync::OnceLock;

fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| Workload::scaled(20_000, 2_000))
}

fn seconds(b: &SweepBuilder<'_>, alg: Algorithm, ratio: f64) -> f64 {
    b.run_one(alg, ratio).seconds
}

/// §4.1 / Figure 5: "when the smaller relation fits entirely in memory,
/// Hybrid and Simple algorithms have, as expected, identical execution
/// times."
#[test]
fn hybrid_equals_simple_at_full_memory() {
    let b = SweepBuilder::new(workload());
    let h = b.run_one(Algorithm::HybridHash, 1.0);
    let s = b.run_one(Algorithm::SimpleHash, 1.0);
    let diff = (h.seconds - s.seconds).abs() / h.seconds;
    assert!(diff < 0.01, "hybrid {} vs simple {}", h.seconds, s.seconds);
}

/// Figure 5/6: "the Hybrid algorithm dominates over the entire available
/// memory range."
#[test]
fn hybrid_dominates_everywhere() {
    for attrs in [("unique1", "unique1"), ("unique2", "unique2")] {
        let b = SweepBuilder::new(workload()).on(attrs.0, attrs.1);
        for ratio in [1.0, 0.5, 0.25, 0.125] {
            let hybrid = seconds(&b, Algorithm::HybridHash, ratio);
            for other in [
                Algorithm::SortMerge,
                Algorithm::SimpleHash,
                Algorithm::GraceHash,
            ] {
                let t = seconds(&b, other, ratio);
                assert!(
                    hybrid <= t * 1.01,
                    "{} ({t:.2}s) beat hybrid ({hybrid:.2}s) at ratio {ratio} on {attrs:?}",
                    other.name()
                );
            }
        }
    }
}

/// §4.1: "Grace joins are relatively insensitive to decreasing the amount
/// of available memory" — extra buckets cost only scheduling overhead.
#[test]
fn grace_is_memory_insensitive() {
    let b = SweepBuilder::new(workload());
    let at_full = seconds(&b, Algorithm::GraceHash, 1.0);
    let at_fifth = seconds(&b, Algorithm::GraceHash, 0.2);
    assert!(
        at_fifth < at_full * 1.25,
        "grace rose too steeply: {at_full:.2}s -> {at_fifth:.2}s"
    );
}

/// §4.1: "as memory availability decreases, Simple hash degrades rapidly
/// because it repeatedly reads and writes the same data", while between
/// 0.5 and 1.0 it outperforms Grace and sort-merge.
#[test]
fn simple_window_and_collapse() {
    let b = SweepBuilder::new(workload());
    let s_half = seconds(&b, Algorithm::SimpleHash, 0.5);
    assert!(s_half < seconds(&b, Algorithm::GraceHash, 0.5));
    assert!(s_half < seconds(&b, Algorithm::SortMerge, 0.5));
    let s_tenth = seconds(&b, Algorithm::SimpleHash, 0.1);
    assert!(
        s_tenth > seconds(&b, Algorithm::GraceHash, 0.1) * 2.0,
        "simple must collapse at low memory"
    );
    assert!(s_tenth > seconds(&b, Algorithm::SortMerge, 0.1));
}

/// §4.1: "the response time for the Hybrid algorithm approaches that of the
/// Grace algorithm as memory is reduced."
#[test]
fn hybrid_approaches_grace() {
    let b = SweepBuilder::new(workload());
    let gap = |r: f64| {
        let g = seconds(&b, Algorithm::GraceHash, r);
        let h = seconds(&b, Algorithm::HybridHash, r);
        (g - h) / g
    };
    let wide = gap(1.0);
    let narrow = gap(0.1);
    assert!(wide > 0.3, "hybrid's advantage at full memory: {wide}");
    assert!(narrow < wide / 2.0, "gap must shrink: {wide} -> {narrow}");
}

/// §4.1: HPJA joins beat non-HPJA joins (short-circuiting), by a roughly
/// constant amount for Grace across the memory range.
#[test]
fn hpja_shortcircuiting_wins_by_constant_margin() {
    let w = workload();
    let hp = SweepBuilder::new(w);
    let nhp = SweepBuilder::new(w).on("unique2", "unique2");
    let mut gaps = Vec::new();
    for ratio in [1.0, 0.5, 0.25] {
        for alg in Algorithm::ALL {
            let a = seconds(&hp, alg, ratio);
            let b = seconds(&nhp, alg, ratio);
            assert!(b > a, "{} non-HPJA must be slower at {ratio}", alg.name());
            if alg == Algorithm::GraceHash {
                gaps.push(b - a);
            }
        }
    }
    let (min, max) = (
        gaps.iter().cloned().fold(f64::MAX, f64::min),
        gaps.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max - min < 0.25 * max,
        "grace HPJA gap should be constant across ratios: {gaps:?}"
    );
}

/// §4.1 (Table 1 discussion): Grace bucket-joining short-circuits even for
/// non-HPJA joins — the response-time difference is entirely in
/// bucket-forming, so Grace's non-HPJA ring traffic barely grows with the
/// bucket count.
#[test]
fn grace_bucket_joins_shortcircuit_for_nonhpja() {
    let b = SweepBuilder::new(workload()).on("unique2", "unique2");
    let few = b.run_one(Algorithm::GraceHash, 0.5);
    let many = b.run_one(Algorithm::GraceHash, 0.125);
    let few_pk = few.report.packets() as f64;
    let many_pk = many.report.packets() as f64;
    assert!(
        many_pk < few_pk * 1.25,
        "bucket joins must not add ring traffic: {few_pk} -> {many_pk}"
    );
}

/// §4.2: filters reduce every algorithm's response time without changing
/// the relative order, and Grace benefits the least (no disk I/O saved).
#[test]
fn bit_filters_help_everyone_grace_least() {
    let w = workload();
    let plain = SweepBuilder::new(w);
    let filt = SweepBuilder::new(w).filtered(true);
    let mut improvements = Vec::new();
    for alg in Algorithm::ALL {
        let a = seconds(&plain, alg, 0.5);
        let b = seconds(&filt, alg, 0.5);
        assert!(b < a, "{} must improve with filters", alg.name());
        improvements.push((alg, (a - b) / a));
    }
    let grace = improvements
        .iter()
        .find(|(a, _)| *a == Algorithm::GraceHash)
        .unwrap()
        .1;
    for (alg, impr) in &improvements {
        if *alg != Algorithm::GraceHash {
            assert!(
                *impr > grace,
                "{} ({impr:.3}) should gain more than grace ({grace:.3})",
                alg.name()
            );
        }
    }
    // Grace's I/O volume is untouched by filtering (only applied during
    // bucket-joining).
    let g0 = plain.run_one(Algorithm::GraceHash, 0.5);
    let g1 = filt.run_one(Algorithm::GraceHash, 0.5);
    assert_eq!(g0.report.page_ios(), g1.report.page_ios());
}

/// §4.3 / Figure 15: HPJA joins run faster locally than remotely (all the
/// joining tuples short-circuit locally).
#[test]
fn hpja_local_beats_remote() {
    let w = workload();
    let local = SweepBuilder::new(w);
    let remote = SweepBuilder::new(w).remote();
    for alg in [Algorithm::GraceHash, Algorithm::HybridHash] {
        for ratio in [1.0, 0.25] {
            let l = seconds(&local, alg, ratio);
            let r = seconds(&remote, alg, ratio);
            assert!(
                l < r,
                "{} HPJA local {l:.2} !< remote {r:.2} at {ratio}",
                alg.name()
            );
        }
    }
}

/// §4.3 / Figure 15: Simple hash crosses over — local wins at full memory,
/// remote wins once overflow processing (non-HPJA by construction)
/// dominates.
#[test]
fn simple_hpja_local_remote_crossover() {
    let w = workload();
    let local = SweepBuilder::new(w);
    let remote = SweepBuilder::new(w).remote();
    assert!(
        seconds(&local, Algorithm::SimpleHash, 1.0) < seconds(&remote, Algorithm::SimpleHash, 1.0)
    );
    assert!(
        seconds(&remote, Algorithm::SimpleHash, 0.25)
            < seconds(&local, Algorithm::SimpleHash, 0.25)
    );
}

/// §4.3 / Figure 16: for non-HPJA joins at full memory, remote processing
/// wins (probe CPU offloads to the diskless nodes), and the advantage
/// erodes as memory shrinks (spooled buckets join HPJA-like).
#[test]
fn nonhpja_remote_wins_at_full_memory_then_erodes() {
    let w = workload();
    let local = SweepBuilder::new(w).on("unique2", "unique2");
    let remote = SweepBuilder::new(w).on("unique2", "unique2").remote();
    let l1 = seconds(&local, Algorithm::HybridHash, 1.0);
    let r1 = seconds(&remote, Algorithm::HybridHash, 1.0);
    assert!(
        r1 < l1 * 0.8,
        "remote must win clearly at 1.0: {l1:.2} vs {r1:.2}"
    );
    let l2 = seconds(&local, Algorithm::HybridHash, 0.1);
    let r2 = seconds(&remote, Algorithm::HybridHash, 0.1);
    let gap1 = (l1 - r1) / l1;
    let gap2 = (l2 - r2) / l2;
    assert!(
        gap2 < gap1 / 2.0,
        "remote advantage must erode: {gap1:.3} -> {gap2:.3}"
    );
}

/// §5: local joins saturate the CPUs; the remote configuration drops the
/// disk nodes to partial utilisation (the paper reports ~60 %).
#[test]
fn remote_configuration_unloads_disk_nodes() {
    let w = workload();
    let l = SweepBuilder::new(w)
        .on("unique2", "unique2")
        .run_one(Algorithm::HybridHash, 1.0);
    let r = SweepBuilder::new(w)
        .on("unique2", "unique2")
        .remote()
        .run_one(Algorithm::HybridHash, 1.0);
    assert!(
        l.report.disk_node_cpu_utilization > 0.75,
        "local joins should be CPU bound: {}",
        l.report.disk_node_cpu_utilization
    );
    assert!(
        r.report.disk_node_cpu_utilization < l.report.disk_node_cpu_utilization,
        "remote must unload the disk nodes"
    );
}

/// §4.4: NU joins are slower than UU for the hash algorithms (skewed inner
/// distribution causes overflow and chains), but *faster* for sort-merge
/// (the merge ends early once the skewed inner relation is exhausted).
#[test]
fn skew_hurts_hash_joins_helps_sort_merge() {
    let w = workload();
    let uu = SweepBuilder::new(w).range_loaded();
    let nu = SweepBuilder::new(w).on("normal", "unique1").range_loaded();
    let ratio = 0.17;
    for alg in [Algorithm::HybridHash, Algorithm::SimpleHash] {
        let u = seconds(&uu, alg, ratio);
        let n = seconds(&nu, alg, ratio);
        assert!(
            n > u,
            "{} NU ({n:.2}) must be slower than UU ({u:.2})",
            alg.name()
        );
    }
    let u = seconds(&uu, Algorithm::SortMerge, ratio);
    let n = seconds(&nu, Algorithm::SortMerge, ratio);
    assert!(n < u, "sort-merge NU ({n:.2}) must beat UU ({u:.2})");
}

/// §4.4: NU sort-merge reads less of the outer relation (semantic early
/// termination of the merge).
#[test]
fn sort_merge_early_termination_saves_reads() {
    let w = workload();
    let uu = SweepBuilder::new(w)
        .range_loaded()
        .run_one(Algorithm::SortMerge, 1.0);
    let nu = SweepBuilder::new(w)
        .on("normal", "unique1")
        .range_loaded()
        .run_one(Algorithm::SortMerge, 1.0);
    assert!(
        nu.report.page_ios() < uu.report.page_ios(),
        "NU merge must stop early: {} !< {} page I/Os",
        nu.report.page_ios(),
        uu.report.page_ios()
    );
}

/// §4.4: skewed values produce real hash chains (the paper measured an
/// average of 3.3, max 16). Chains cost probe comparisons when the probing
/// values hit the duplicate-laden buckets — the NN case.
#[test]
fn skewed_build_forms_chains() {
    let w = workload();
    let nn = SweepBuilder::new(w)
        .on("normal", "normal")
        .range_loaded()
        .run_one(Algorithm::HybridHash, 1.0);
    let uu = SweepBuilder::new(w)
        .range_loaded()
        .run_one(Algorithm::HybridHash, 1.0);
    let nn_per_probe =
        nn.report.total.counts.comparisons as f64 / nn.report.total.counts.hash_probes as f64;
    let uu_per_probe =
        uu.report.total.counts.comparisons as f64 / uu.report.total.counts.hash_probes as f64;
    assert!(
        nn_per_probe > uu_per_probe * 2.0,
        "NN chains must lengthen probes: {nn_per_probe:.2} vs {uu_per_probe:.2} compares/probe"
    );
}

/// §4.2 / Figure 12: one packet-sized filter is nearly useless at one
/// bucket and sharpens as the bucket count grows (per-bucket filters).
#[test]
fn grace_filters_sharpen_with_buckets() {
    let w = workload();
    let filt = SweepBuilder::new(w).filtered(true);
    let one = filt.run_one(Algorithm::GraceHash, 1.0);
    let four = filt.run_one(Algorithm::GraceHash, 0.25);
    assert!(
        four.report.total.counts.filter_drops > one.report.total.counts.filter_drops,
        "more buckets -> more aggregate filter bits -> more drops ({} vs {})",
        four.report.total.counts.filter_drops,
        one.report.total.counts.filter_drops
    );
}

/// §4.3: "the performance of such a [mixed] configuration was almost
/// always 1/2 way between that of the 'local' and 'remote'
/// configurations."
#[test]
fn mixed_site_falls_between_local_and_remote() {
    let w = workload();
    let local = SweepBuilder::new(w).on("unique2", "unique2");
    let remote = SweepBuilder::new(w).on("unique2", "unique2").remote();
    let mixed = SweepBuilder::new(w).on("unique2", "unique2").mixed();
    let l = seconds(&local, Algorithm::HybridHash, 1.0);
    let r = seconds(&remote, Algorithm::HybridHash, 1.0);
    let m = seconds(&mixed, Algorithm::HybridHash, 1.0);
    let (lo, hi) = if l < r { (l, r) } else { (r, l) };
    assert!(
        m > lo * 0.95 && m < hi * 1.05,
        "mixed ({m:.2}) should fall between local ({l:.2}) and remote ({r:.2})"
    );
}

/// Appendix A: the bucket analyzer adds buckets in asymmetric (mixed)
/// configurations so that every join process can receive tuples.
#[test]
fn mixed_site_triggers_bucket_analyzer() {
    use gamma_core::query::bucket_count;
    use gamma_core::{Attr, JoinSpec};
    // 8 disks, 16 join processes: 3 requested buckets are pathological
    // (total entries 32 ≡ 0 mod 16 with cycle too short) and get bumped.
    let spec = |mem: u64| {
        JoinSpec::new(
            Algorithm::HybridHash,
            0,
            1,
            Attr { offset: 0 },
            Attr { offset: 0 },
            mem,
        )
    };
    let r = 3_000u64;
    let n = bucket_count(&spec(1_000), r, 8, 16);
    assert!(n > 3, "analyzer must add buckets, got {n}");
}

/// End-to-end mixed-site joins stay exact even when the analyzer has
/// reshaped the bucket count.
#[test]
fn mixed_site_joins_are_exact() {
    let w = workload();
    for ratio in [1.0, 0.3] {
        for alg in [
            Algorithm::SimpleHash,
            Algorithm::GraceHash,
            Algorithm::HybridHash,
        ] {
            let p = SweepBuilder::new(w).mixed().run_one(alg, ratio);
            assert_eq!(p.report.result_tuples, 2_000, "{} at {ratio}", alg.name());
        }
    }
}

/// §4.2/§5's proposed extension, implemented here: extending filtering to
/// the bucket-forming phases must cut Grace's page I/O (which join-phase
/// filtering alone cannot touch) and improve its response, while staying
/// exact (the sweep validates against the oracle).
#[test]
fn bucket_forming_filters_cut_grace_io() {
    let w = workload();
    let join_only = SweepBuilder::new(w)
        .filtered(true)
        .run_one(Algorithm::GraceHash, 0.25);
    let extended = SweepBuilder::new(w)
        .filter_bucket_forming()
        .run_one(Algorithm::GraceHash, 0.25);
    assert!(
        extended.report.page_ios() < join_only.report.page_ios() * 9 / 10,
        "bucket-forming filters must save spool I/O: {} vs {}",
        extended.report.page_ios(),
        join_only.report.page_ios()
    );
    assert!(
        extended.seconds < join_only.seconds,
        "and response time: {:.2} vs {:.2}",
        extended.seconds,
        join_only.seconds
    );
}

/// §5 quantified: the operational-analysis throughput bound of the remote
/// configuration exceeds the local one for non-HPJA joins (the disk
/// nodes' per-query demand shrinks when probes move to diskless nodes).
#[test]
fn remote_raises_multiuser_throughput_bound() {
    let w = workload();
    let local = SweepBuilder::new(w)
        .on("unique2", "unique2")
        .run_one(Algorithm::HybridHash, 1.0);
    let remote = SweepBuilder::new(w)
        .on("unique2", "unique2")
        .remote()
        .run_one(Algorithm::HybridHash, 1.0);
    let xl = local.report.demand.throughput_bound(u32::MAX, 0.0);
    let xr = remote.report.demand.throughput_bound(u32::MAX, 0.0);
    assert!(
        xr > xl * 1.2,
        "remote bound {xr:.5} should clearly exceed local {xl:.5}"
    );
    // Sanity on the bound shape: more clients never lowers it, and one
    // client is response-limited.
    assert!(remote.report.demand.throughput_bound(2, 0.0) >= xl.min(xr) * 0.0);
    let x1 = remote.report.demand.throughput_bound(1, 0.0);
    assert!(x1 <= xr + 1e-12);
}
