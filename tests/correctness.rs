//! End-to-end correctness: every algorithm, in every configuration the
//! paper exercises, must produce exactly the oracle's result multiset.

use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::Algorithm;

fn workload() -> Workload {
    Workload::scaled(2_000, 200)
}

/// The full configuration matrix at three memory points. Validation
/// (cardinality + multiset checksum vs. the oracle) happens inside the
/// sweep; reaching the end without a panic is the assertion.
#[test]
fn all_algorithms_all_configs_match_oracle() {
    let w = workload();
    let ratios = [1.0, 0.4, 0.15];
    for attrs in [("unique1", "unique1"), ("unique2", "unique2")] {
        for filter in [false, true] {
            for remote in [false, true] {
                let mut b = SweepBuilder::new(&w).on(attrs.0, attrs.1).filtered(filter);
                if remote {
                    b = b.remote();
                }
                let pts = b.run(&Algorithm::ALL, &ratios);
                assert_eq!(pts.len(), Algorithm::ALL.len() * ratios.len());
                for p in &pts {
                    assert_eq!(p.report.result_tuples, 200, "{} r={}", p.algorithm, p.ratio);
                    assert!(p.seconds > 0.0);
                }
            }
        }
    }
}

/// Severe memory pressure (deep overflow recursion for Simple, many
/// buckets for Grace/Hybrid) must not lose or duplicate tuples.
#[test]
fn extreme_memory_pressure_is_exact() {
    let w = workload();
    for alg in Algorithm::ALL {
        let p = SweepBuilder::new(&w).run_one(alg, 0.05);
        assert_eq!(p.report.result_tuples, 200, "{}", alg.name());
        if alg == Algorithm::SimpleHash {
            assert!(
                p.report.overflow_passes >= 3,
                "simple at 5% memory must recurse repeatedly, saw {}",
                p.report.overflow_passes
            );
        }
    }
}

/// Joins on the skewed attribute (NU / UN / NN) remain exact, including
/// the NN case whose result is far larger than either input.
#[test]
fn skewed_joins_match_oracle() {
    let w = workload();
    for attrs in [
        ("normal", "unique1"),
        ("unique1", "normal"),
        ("normal", "normal"),
    ] {
        let expect = w.expect(attrs.0, attrs.1);
        for alg in Algorithm::ALL {
            let p = SweepBuilder::new(&w)
                .on(attrs.0, attrs.1)
                .range_loaded()
                .run_one(alg, 0.17);
            assert_eq!(
                p.report.result_tuples,
                expect.tuples,
                "{} on {attrs:?}",
                alg.name()
            );
            assert_eq!(p.report.result_checksum, expect.checksum);
        }
    }
}

/// The joinAselB / joinCselAselB variants: selections applied during the
/// scans.
#[test]
fn selection_queries_are_exact() {
    use gamma_core::run_join;
    use gamma_wisconsin::{join_asel_b, join_csel_asel_b, load_hashed, oracle_join, WisconsinGen};

    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(2_000, 0);
    let b_rows = gen.relation(2_000, 7);

    for alg in Algorithm::ALL {
        let mut machine = gamma_core::Machine::new(gamma_core::MachineConfig::local_8());
        let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
        let b = load_hashed(&mut machine, "B", &b_rows, "unique1");
        let mem = machine.relation(b).data_bytes / 4;

        let spec = join_asel_b(alg, b, a, 200, mem);
        let report = run_join(&mut machine, &spec);
        let expect = oracle_join(&b_rows, &a_rows, "unique1", "unique1", Some((0, 199)), None);
        assert_eq!(
            report.result_tuples,
            expect.tuples,
            "joinAselB {}",
            alg.name()
        );
        assert_eq!(report.result_checksum, expect.checksum);

        let spec = join_csel_asel_b(alg, b, a, 400, 1_000, mem);
        let report = run_join(&mut machine, &spec);
        let expect = oracle_join(
            &b_rows,
            &a_rows,
            "unique1",
            "unique1",
            Some((0, 399)),
            Some((0, 999)),
        );
        assert_eq!(
            report.result_tuples,
            expect.tuples,
            "joinCselAselB {}",
            alg.name()
        );
        assert_eq!(report.result_checksum, expect.checksum);
    }
}

/// Figure 7's optimistic policy (deliberate overflow) stays exact.
#[test]
fn optimistic_overflow_is_exact() {
    use gamma_core::query::OverflowPolicy;
    let w = workload();
    for ratio in [0.55, 0.65, 0.8] {
        let p = SweepBuilder::new(&w)
            .policy(OverflowPolicy::Optimistic)
            .run_one(Algorithm::HybridHash, ratio);
        assert_eq!(p.report.result_tuples, 200, "ratio {ratio}");
        assert_eq!(p.report.buckets, 1);
    }
}

/// Back-to-back joins on one machine must not leak storage: every temp,
/// bucket, overflow and result file is freed.
#[test]
fn no_storage_leaks_across_runs() {
    use gamma_core::run_join;
    use gamma_wisconsin::{join_abprime, load_hashed, WisconsinGen};

    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(1_000, 0);
    let b_rows = gen.sample(&a_rows, 100, 1);
    let mut machine = gamma_core::Machine::new(gamma_core::MachineConfig::local_8());
    let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
    let b = load_hashed(&mut machine, "B", &b_rows, "unique1");
    let baseline: usize = machine
        .nodes
        .iter()
        .filter_map(|n| n.volume.as_ref())
        .map(|v| v.total_pages())
        .sum();
    for alg in Algorithm::ALL {
        for ratio in [1.0, 0.2] {
            let mem = (machine.relation(b).data_bytes as f64 * ratio) as u64;
            let spec = join_abprime(alg, b, a, "unique1", "unique1", mem);
            let _ = run_join(&mut machine, &spec);
            let now: usize = machine
                .nodes
                .iter()
                .filter_map(|n| n.volume.as_ref())
                .map(|v| v.total_pages())
                .sum();
            assert_eq!(now, baseline, "{} at {ratio} leaked pages", alg.name());
        }
    }
}

/// The two implemented extensions — bucket-forming filters (§4.2/§5) and
/// Grace bucket tuning [KITS83] — stay exact, separately and together,
/// including under a deliberately misestimated bucket plan.
#[test]
fn extensions_stay_exact() {
    let w = workload();
    for ratio in [0.45, 0.17] {
        let p = SweepBuilder::new(&w)
            .filter_bucket_forming()
            .run_one(Algorithm::GraceHash, ratio);
        assert_eq!(
            p.report.result_tuples, 200,
            "bucket-forming filters, grace, {ratio}"
        );
        let p = SweepBuilder::new(&w)
            .filter_bucket_forming()
            .run_one(Algorithm::HybridHash, ratio);
        assert_eq!(
            p.report.result_tuples, 200,
            "bucket-forming filters, hybrid, {ratio}"
        );
        let p = SweepBuilder::new(&w)
            .bucket_tuning()
            .run_one(Algorithm::GraceHash, ratio);
        assert_eq!(p.report.result_tuples, 200, "bucket tuning, {ratio}");
        let p = SweepBuilder::new(&w)
            .bucket_tuning()
            .filter_bucket_forming()
            .run_one(Algorithm::GraceHash, ratio);
        assert_eq!(p.report.result_tuples, 200, "both extensions, {ratio}");
    }

    // Misestimated plan: one bucket planned, four needed; tuning must
    // still be exact and avoid overflow passes.
    use gamma_core::run_join;
    use gamma_wisconsin::{join_abprime, load_hashed, WisconsinGen};
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(5_000, 0);
    let b_rows = gen.sample(&a_rows, 500, 1);
    let mut machine = gamma_core::Machine::new(gamma_core::MachineConfig::local_8());
    let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
    let b = load_hashed(&mut machine, "B", &b_rows, "unique1");
    let mut spec = join_abprime(
        gamma_core::Algorithm::GraceHash,
        b,
        a,
        "unique1",
        "unique1",
        machine.relation(b).data_bytes / 3,
    );
    spec.buckets_override = Some(1);
    let fixed = run_join(&mut machine, &spec);
    assert_eq!(fixed.result_tuples, 500);
    spec.bucket_tuning = true;
    let tuned = run_join(&mut machine, &spec);
    assert_eq!(tuned.result_tuples, 500);
    // At this tiny scale per-site variance still causes some overflow, but
    // regrouping by measured size must strictly reduce it (at full scale
    // it eliminates it — see the `tuning` ablation).
    assert!(
        tuned.overflow_passes < fixed.overflow_passes,
        "tuned {} !< fixed {}",
        tuned.overflow_passes,
        fixed.overflow_passes
    );
}
