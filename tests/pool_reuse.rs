//! Worker threads are spawned once, at pool construction, and reused for
//! every subsequent wave, phase, query and sweep point — never re-spawned
//! mid-run. This lives in its own integration-test binary so no sibling
//! test can touch the process-global spawn counter while it runs.

use std::sync::Arc;

use gamma_bench::{pooled_map_on, SweepBuilder, Workload};
use gamma_core::exec::pool::threads_spawned;
use gamma_core::query::Algorithm;
use gamma_core::{ExecConfig, WorkerPool};

#[test]
fn no_thread_is_spawned_after_the_run_starts() {
    let before = threads_spawned();
    let pool = Arc::new(WorkerPool::new(4));
    let after_build = threads_spawned();
    assert_eq!(after_build, before + 3, "size-4 pool = 3 dedicated workers");

    // Single queries across algorithms and phases, on the pool…
    let w = Workload::scaled(1_500, 150);
    for alg in [
        Algorithm::SortMerge,
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ] {
        let p = SweepBuilder::new(&w)
            .exec(ExecConfig::pooled(Arc::clone(&pool)))
            .run_one(alg, 0.5);
        assert!(p.report.result_tuples > 0);
    }
    // …and a pooled sweep dispatch running whole queries as pool jobs,
    // which themselves submit nested per-step batches to the same pool.
    let ratios = vec![1.0, 0.5, 0.2];
    let pts = pooled_map_on(Some(pool.as_ref()), "reuse sweep", ratios, |r| {
        SweepBuilder::new(&w)
            .exec(ExecConfig::pooled(Arc::clone(&pool)))
            .run_one(Algorithm::HybridHash, r)
    });
    assert_eq!(pts.len(), 3);

    assert_eq!(
        threads_spawned(),
        after_build,
        "a worker thread was spawned after the run started"
    );
}
