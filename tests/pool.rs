//! Pool-size × machine-shape byte-identity property sweep.
//!
//! The executor's contract is that the worker pool is invisible in every
//! artifact: for ANY machine shape and ANY pool size — including the
//! degenerate size-1 pool and a pool far wider than the machine — the
//! ledgers, phase records, result checksums and response times are the
//! ones the serial executor produces. This sweep drives node counts 1..9
//! against pool sizes {1, 2, 8, oversubscribed}, picking the algorithm,
//! memory ratio and filter setting per shape from a tiny deterministic
//! LCG so the grid exercises varied wave shapes without a fixture per
//! cell.

use std::sync::Arc;

use gamma_bench::sweep::LoadStyle;
use gamma_bench::Workload;
use gamma_core::cost::CostModel;
use gamma_core::query::Algorithm;
use gamma_core::{run_join, ExecConfig, JoinReport, MachineConfig, WorkerPool};
use gamma_wisconsin::join_abprime;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

/// Deterministic case picker (splitmix-style) — no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn run_case(
    w: &Workload,
    nodes: usize,
    alg: Algorithm,
    ratio: f64,
    filtered: bool,
    exec: ExecConfig,
) -> JoinReport {
    let cfg = MachineConfig {
        disk_nodes: nodes,
        diskless_nodes: 0,
        cost: CostModel::gamma_1989(),
    };
    let (mut machine, a, bprime) =
        w.machine_with(cfg, LoadStyle::HashedUnique1, "unique1", "unique1");
    machine.exec = exec;
    let memory = (machine.relation(bprime).data_bytes as f64 * ratio).ceil() as u64;
    let mut spec = join_abprime(alg, bprime, a, "unique1", "unique1", memory);
    spec.bit_filter = filtered;
    run_join(&mut machine, &spec)
}

#[test]
fn every_pool_size_matches_serial_on_every_machine_shape() {
    let w = Workload::scaled(1_500, 150);
    let mut lcg = Lcg(1989);
    // Oversubscribed: far more lanes than the widest machine has nodes.
    let pools: Vec<(usize, Arc<WorkerPool>)> = [1usize, 2, 8, 21]
        .into_iter()
        .map(|s| (s, Arc::new(WorkerPool::new(s))))
        .collect();
    for nodes in 1..=9usize {
        let alg = ALGORITHMS[(lcg.next() % 4) as usize];
        let ratio = [0.2, 0.5, 1.0][(lcg.next() % 3) as usize];
        let filtered = lcg.next() % 2 == 1;
        let serial = run_case(&w, nodes, alg, ratio, filtered, ExecConfig::serial());
        for (size, pool) in &pools {
            let what = format!(
                "{} nodes={nodes} ratio={ratio} filters={filtered} pool={size}",
                alg.name()
            );
            let pooled = run_case(
                &w,
                nodes,
                alg,
                ratio,
                filtered,
                ExecConfig::pooled(Arc::clone(pool)),
            );
            assert_eq!(
                serial.result_tuples, pooled.result_tuples,
                "{what}: cardinality"
            );
            assert_eq!(
                serial.result_checksum, pooled.result_checksum,
                "{what}: checksum"
            );
            assert_eq!(serial.response, pooled.response, "{what}: response");
            assert_eq!(serial.total, pooled.total, "{what}: aggregate usage/counts");
            assert_eq!(serial.phases.len(), pooled.phases.len(), "{what}: phases");
            for (pa, pb) in serial.phases.iter().zip(&pooled.phases) {
                assert_eq!(pa.name, pb.name, "{what}: phase name");
                assert_eq!(pa.duration, pb.duration, "{what}/{}: duration", pa.name);
                assert_eq!(pa.total, pb.total, "{what}/{}: phase usage", pa.name);
            }
        }
    }
}

#[test]
fn degenerate_pool_is_the_serial_executor() {
    // `ExecConfig::pooled(WorkerPool::new(1))` must take the plain serial
    // path (no dedicated workers), not merely produce equal bytes.
    let pool = Arc::new(WorkerPool::new(1));
    assert_eq!(pool.workers(), 0);
    let w = Workload::scaled(1_000, 100);
    let serial = run_case(
        &w,
        4,
        Algorithm::HybridHash,
        0.5,
        false,
        ExecConfig::serial(),
    );
    let degen = run_case(
        &w,
        4,
        Algorithm::HybridHash,
        0.5,
        false,
        ExecConfig::pooled(pool),
    );
    assert_eq!(serial.response, degen.response);
    assert_eq!(serial.total, degen.total);
    assert_eq!(serial.result_checksum, degen.result_checksum);
}
