//! Metrics subsystem integration tests: deterministic snapshots,
//! serial-vs-pooled equality, and exact reconciliation of every metric
//! family against the engine's own resource ledgers.

use gamma_bench::metrics::{metrics_join, metrics_join_with, reconcile};
use gamma_bench::Workload;
use gamma_core::query::Algorithm;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

/// Two metered runs of the same point must export byte-identical
/// snapshots — the property that makes `results/metrics-*.json` usable as
/// golden regression files.
#[test]
fn snapshots_are_byte_identical_across_runs() {
    let w = Workload::scaled(2_000, 200);
    for alg in ALGORITHMS {
        let a = metrics_join(&w, alg, 0.5, true, false);
        let b = metrics_join(&w, alg, 0.5, true, false);
        assert!(
            !a.registry.is_empty(),
            "{}: no metrics recorded",
            alg.name()
        );
        assert_eq!(
            a.json(),
            b.json(),
            "{}: JSON snapshot differs across runs",
            alg.name()
        );
        assert_eq!(
            a.prometheus(),
            b.prometheus(),
            "{}: Prometheus export differs across runs",
            alg.name()
        );
    }
}

/// Every metric family must reconcile exactly with the ledgers for every
/// algorithm, locally and on diskless join nodes (remote sort-merge is
/// unsupported, as in the paper), filtered and not: the ledger mirror sums
/// to the report totals, each site-mirrored counter sums to the ledger
/// counter it shadows, and the device histograms account for every charged
/// microsecond.
#[test]
fn all_algorithms_reconcile_with_ledger() {
    let w = Workload::scaled(2_000, 200);
    for filtered in [false, true] {
        for remote in [false, true] {
            for alg in ALGORITHMS {
                if remote && alg == Algorithm::SortMerge {
                    continue;
                }
                let run = metrics_join(&w, alg, 0.5, filtered, remote);
                let errs = reconcile(&run.registry, &run.report);
                assert!(
                    errs.is_empty(),
                    "{} (filtered={filtered}, remote={remote}) failed reconciliation:\n{}",
                    alg.name(),
                    errs.join("\n")
                );
                assert_eq!(
                    run.registry.phases().len(),
                    run.report.phases.len(),
                    "{}: one sealed metrics phase per report phase",
                    alg.name()
                );
            }
        }
    }
}

/// The registry observes the run without perturbing it: response time and
/// result checksum are identical with and without metering.
#[test]
fn metering_never_changes_the_simulation() {
    let w = Workload::scaled(2_000, 200);
    for alg in ALGORITHMS {
        let bare = gamma_bench::SweepBuilder::new(&w).run_one(alg, 0.5);
        let metered = metrics_join(&w, alg, 0.5, false, false);
        assert_eq!(
            bare.report.response,
            metered.report.response,
            "{}: metering changed the simulated response",
            alg.name()
        );
        assert_eq!(
            bare.report.result_checksum,
            metered.report.result_checksum,
            "{}: metering changed the result",
            alg.name()
        );
    }
}

/// With no registry installed the emission hooks are inert: nothing is
/// recorded anywhere, and a registry installed *after* a run stays empty.
#[test]
fn emissions_are_inert_without_installed_registry() {
    let w = Workload::scaled(1_000, 100);
    assert!(gamma_metrics::take().is_none(), "no leftover registry");
    let p = gamma_bench::SweepBuilder::new(&w).run_one(Algorithm::HybridHash, 0.5);
    assert!(p.report.result_tuples > 0);
    assert!(
        gamma_metrics::take().is_none(),
        "un-metered run must not install a registry"
    );
    gamma_metrics::install(gamma_metrics::Registry::new());
    let reg = gamma_metrics::take().expect("installed above");
    assert!(reg.is_empty(), "fresh registry polluted by previous run");
}

/// The serial and pooled executors must produce byte-identical snapshots:
/// worker-registry merging is commutative and phase attribution is pinned
/// before a step's bundles are dispatched.
#[test]
fn pooled_executor_produces_identical_snapshots() {
    use std::sync::Arc;

    use gamma_core::{ExecConfig, WorkerPool};

    let w = Workload::scaled(2_000, 200);
    let pool = Arc::new(WorkerPool::new(4));
    for alg in ALGORITHMS {
        let serial = metrics_join_with(&w, alg, 0.5, true, false, ExecConfig::serial());
        let pooled = metrics_join_with(
            &w,
            alg,
            0.5,
            true,
            false,
            ExecConfig::pooled(Arc::clone(&pool)),
        );
        assert_eq!(
            serial.json(),
            pooled.json(),
            "{}: executors disagree on the JSON snapshot",
            alg.name()
        );
        assert_eq!(
            serial.prometheus(),
            pooled.prometheus(),
            "{}: executors disagree on the Prometheus export",
            alg.name()
        );
        let errs = reconcile(&pooled.registry, &pooled.report);
        assert!(
            errs.is_empty(),
            "{} (pooled) failed reconciliation:\n{}",
            alg.name(),
            errs.join("\n")
        );
    }
}
