//! Serial vs pooled executor equivalence.
//!
//! A machine whose [`ExecConfig`] carries a worker pool runs each node's
//! executor step on pool workers and chunks heavy per-tuple stages across
//! them. These tests pin one machine to each executor inside one process
//! and assert the two are indistinguishable: identical result cardinality
//! and checksum, identical per-phase virtual-time ledgers and event
//! counts, identical response times, and byte-identical trace exports —
//! for all four algorithms, local and remote join sites, with and without
//! bit filters. Worker panics must surface with the stage and node that
//! raised them.

use std::sync::Arc;

use gamma_bench::sweep::LoadStyle;
use gamma_bench::tracing::trace_join_with;
use gamma_bench::Workload;
use gamma_core::query::{Algorithm, JoinSite};
use gamma_core::{run_join, ExecConfig, JoinReport, WorkerPool};
use gamma_wisconsin::join_abprime;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

/// Run one join point on a fresh machine pinned to `exec`. Ratio 0.5
/// forces multi-bucket plans for Grace/Hybrid and real overflow handling
/// for Simple.
fn run_cell(
    w: &Workload,
    alg: Algorithm,
    remote: bool,
    filtered: bool,
    exec: ExecConfig,
) -> JoinReport {
    let (mut machine, a, bprime) =
        w.machine(remote, LoadStyle::HashedUnique1, "unique1", "unique1");
    machine.exec = exec;
    let memory = machine.relation(bprime).data_bytes / 2;
    let mut spec = join_abprime(alg, bprime, a, "unique1", "unique1", memory);
    // Sort-merge cannot use diskless nodes (§3.1).
    if remote && alg != Algorithm::SortMerge {
        spec.site = JoinSite::Remote;
    }
    spec.bit_filter = filtered;
    run_join(&mut machine, &spec)
}

fn assert_reports_match(a: &JoinReport, b: &JoinReport, what: &str) {
    assert_eq!(a.result_tuples, b.result_tuples, "{what}: cardinality");
    assert_eq!(a.result_checksum, b.result_checksum, "{what}: checksum");
    assert_eq!(a.response, b.response, "{what}: response time");
    assert_eq!(a.total, b.total, "{what}: aggregate usage/counts");
    assert_eq!(a.phases.len(), b.phases.len(), "{what}: phase count");
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.name, pb.name, "{what}: phase name");
        assert_eq!(pa.duration, pb.duration, "{what}/{}: duration", pa.name);
        assert_eq!(pa.total, pb.total, "{what}/{}: phase usage", pa.name);
        assert_eq!(
            pa.sched_overhead, pb.sched_overhead,
            "{what}/{}: sched overhead",
            pa.name
        );
        assert_eq!(
            pa.critical_node, pb.critical_node,
            "{what}/{}: critical node",
            pa.name
        );
    }
}

#[test]
fn pooled_matches_serial_everywhere() {
    let w = Workload::scaled(3_000, 300);
    let pool = Arc::new(WorkerPool::new(3));
    for alg in ALGORITHMS {
        for remote in [false, true] {
            for filtered in [false, true] {
                let what = format!(
                    "{} {} filters={filtered}",
                    alg.name(),
                    if remote { "remote" } else { "local" },
                );
                let serial = run_cell(&w, alg, remote, filtered, ExecConfig::serial());
                let pooled = run_cell(
                    &w,
                    alg,
                    remote,
                    filtered,
                    ExecConfig::pooled(Arc::clone(&pool)),
                );
                assert_reports_match(&serial, &pooled, &what);
            }
        }
    }
}

#[test]
fn pooled_trace_export_is_byte_identical() {
    let w = Workload::scaled(2_000, 200);
    let pool = Arc::new(WorkerPool::new(4));
    for alg in ALGORITHMS {
        for filtered in [false, true] {
            let serial = trace_join_with(&w, alg, 0.5, filtered, ExecConfig::serial());
            let pooled = trace_join_with(
                &w,
                alg,
                0.5,
                filtered,
                ExecConfig::pooled(Arc::clone(&pool)),
            );
            assert!(
                !serial.sink.is_empty(),
                "{}: no events recorded",
                alg.name()
            );
            assert_eq!(
                serial.perfetto_json(),
                pooled.perfetto_json(),
                "{} filters={filtered}: trace export differs between serial and pooled",
                alg.name()
            );
        }
    }
}

/// The metrics registry records per-site counters and device histograms
/// fed straight from the batched data plane; serial and pooled runs of
/// the same point must render byte-identical snapshots, and every
/// snapshot must reconcile exactly against its ledger.
#[test]
fn pooled_metrics_snapshot_is_byte_identical() {
    use gamma_bench::metrics::{metrics_join_with, reconcile};

    let w = Workload::scaled(2_000, 200);
    let pool = Arc::new(WorkerPool::new(3));
    for alg in ALGORITHMS {
        for remote in [false, true] {
            // Sort-merge cannot use diskless nodes (§3.1).
            if remote && alg == Algorithm::SortMerge {
                continue;
            }
            let what = format!("{} {}", alg.name(), if remote { "remote" } else { "local" },);
            let serial = metrics_join_with(&w, alg, 0.5, false, remote, ExecConfig::serial());
            let pooled = metrics_join_with(
                &w,
                alg,
                0.5,
                false,
                remote,
                ExecConfig::pooled(Arc::clone(&pool)),
            );
            assert_reports_match(&serial.report, &pooled.report, &what);
            assert_eq!(serial.json(), pooled.json(), "{what}: metrics JSON differs");
            assert_eq!(
                serial.prometheus(),
                pooled.prometheus(),
                "{what}: prometheus export differs"
            );
            let errs = reconcile(&serial.registry, &serial.report);
            assert!(
                errs.is_empty(),
                "{what}: snapshot fails reconciliation:\n{}",
                errs.join("\n")
            );
        }
    }
}

#[test]
#[should_panic(expected = "step `kaboom` panicked at node 3: node 3 exploded")]
fn worker_panics_carry_stage_and_node_context() {
    use gamma_core::exec::run_step;
    use gamma_core::{Machine, MachineConfig, NodeId};

    let mut machine = Machine::new(MachineConfig::local_8())
        .with_exec(ExecConfig::pooled(Arc::new(WorkerPool::new(4))));
    let mut ledgers = machine.ledgers();
    let participants: Vec<NodeId> = (0..8).collect();
    let mut unit = vec![(); 8];
    run_step(
        &mut machine,
        &mut ledgers,
        "kaboom",
        &participants,
        &mut unit,
        |ctx, _| {
            if ctx.node == 3 {
                panic!("node {} exploded", ctx.node);
            }
        },
    );
}
