//! Serial vs thread-parallel executor equivalence.
//!
//! The `parallel` feature runs each node's executor step on an OS-thread
//! worker. These tests flip the runtime switch inside one process and
//! assert the two paths are indistinguishable: identical result
//! cardinality and checksum, identical per-phase virtual-time ledgers and
//! event counts, identical response times, and byte-identical trace
//! exports — for all four algorithms, local and remote join sites, with
//! and without bit filters.
#![cfg(feature = "parallel")]

use gamma_bench::sweep::LoadStyle;
use gamma_bench::tracing::trace_join;
use gamma_bench::Workload;
use gamma_core::exec::set_parallel;
use gamma_core::query::{Algorithm, JoinSite};
use gamma_core::{run_join, JoinReport};
use gamma_wisconsin::join_abprime;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

/// Run one join point on a fresh machine. Ratio 0.5 forces multi-bucket
/// plans for Grace/Hybrid and real overflow handling for Simple.
fn run_cell(w: &Workload, alg: Algorithm, remote: bool, filtered: bool) -> JoinReport {
    let (mut machine, a, bprime) =
        w.machine(remote, LoadStyle::HashedUnique1, "unique1", "unique1");
    let memory = machine.relation(bprime).data_bytes / 2;
    let mut spec = join_abprime(alg, bprime, a, "unique1", "unique1", memory);
    // Sort-merge cannot use diskless nodes (§3.1).
    if remote && alg != Algorithm::SortMerge {
        spec.site = JoinSite::Remote;
    }
    spec.bit_filter = filtered;
    run_join(&mut machine, &spec)
}

fn assert_reports_match(a: &JoinReport, b: &JoinReport, what: &str) {
    assert_eq!(a.result_tuples, b.result_tuples, "{what}: cardinality");
    assert_eq!(a.result_checksum, b.result_checksum, "{what}: checksum");
    assert_eq!(a.response, b.response, "{what}: response time");
    assert_eq!(a.total, b.total, "{what}: aggregate usage/counts");
    assert_eq!(a.phases.len(), b.phases.len(), "{what}: phase count");
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.name, pb.name, "{what}: phase name");
        assert_eq!(pa.duration, pb.duration, "{what}/{}: duration", pa.name);
        assert_eq!(pa.total, pb.total, "{what}/{}: phase usage", pa.name);
        assert_eq!(
            pa.sched_overhead, pb.sched_overhead,
            "{what}/{}: sched overhead",
            pa.name
        );
        assert_eq!(
            pa.critical_node, pb.critical_node,
            "{what}/{}: critical node",
            pa.name
        );
    }
}

#[test]
fn parallel_matches_serial_everywhere() {
    let w = Workload::scaled(3_000, 300);
    for alg in ALGORITHMS {
        for remote in [false, true] {
            for filtered in [false, true] {
                let what = format!(
                    "{} {} filters={filtered}",
                    alg.name(),
                    if remote { "remote" } else { "local" },
                );
                set_parallel(false);
                let serial = run_cell(&w, alg, remote, filtered);
                set_parallel(true);
                let parallel = run_cell(&w, alg, remote, filtered);
                set_parallel(false);
                assert_reports_match(&serial, &parallel, &what);
            }
        }
    }
}

#[test]
fn parallel_trace_export_is_byte_identical() {
    let w = Workload::scaled(2_000, 200);
    for alg in ALGORITHMS {
        for filtered in [false, true] {
            set_parallel(false);
            let serial = trace_join(&w, alg, 0.5, filtered);
            set_parallel(true);
            let parallel = trace_join(&w, alg, 0.5, filtered);
            set_parallel(false);
            assert!(
                !serial.sink.is_empty(),
                "{}: no events recorded",
                alg.name()
            );
            assert_eq!(
                serial.perfetto_json(),
                parallel.perfetto_json(),
                "{} filters={filtered}: trace export differs between serial and parallel",
                alg.name()
            );
        }
    }
}
