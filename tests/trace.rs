//! Trace subsystem integration tests: deterministic exports and
//! event-totals reconciliation against the engine's own `Counts` ledger.

use gamma_bench::tracing::trace_join;
use gamma_bench::Workload;
use gamma_core::query::Algorithm;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

/// Two traced runs of the same point must export byte-identical artifacts
/// — the property that makes traces usable as golden regression files.
#[test]
fn perfetto_export_is_byte_identical_across_runs() {
    let w = Workload::scaled(2_000, 200);
    for alg in ALGORITHMS {
        let a = trace_join(&w, alg, 0.5, true);
        let b = trace_join(&w, alg, 0.5, true);
        assert!(!a.sink.is_empty(), "{}: no events recorded", alg.name());
        assert_eq!(
            a.perfetto_json(),
            b.perfetto_json(),
            "{}: perfetto export differs across runs",
            alg.name()
        );
        assert_eq!(
            a.summary(),
            b.summary(),
            "{}: summary differs across runs",
            alg.name()
        );
    }
}

/// Every trace event class that mirrors a `Counts` counter must agree with
/// the ledger exactly: the hooks sit at the same statements that increment
/// the counters, and ring eviction never loses totals.
#[test]
fn trace_totals_reconcile_with_ledger_counts() {
    let w = Workload::scaled(2_000, 200);
    for filtered in [false, true] {
        for alg in ALGORITHMS {
            let run = trace_join(&w, alg, 0.5, filtered);
            let c = &run.report.total.counts;
            let t = &run.sink.totals;
            let ctx = format!("{} (filtered={filtered})", alg.name());
            assert_eq!(t.disk_reads, c.pages_read, "{ctx}: pages_read");
            assert_eq!(t.disk_writes, c.pages_written, "{ctx}: pages_written");
            assert_eq!(t.packets_sent, c.packets_sent, "{ctx}: packets_sent");
            assert_eq!(t.packets_recv, c.packets_recv, "{ctx}: packets_recv");
            assert_eq!(
                t.short_circuits, c.msgs_shortcircuit,
                "{ctx}: msgs_shortcircuit"
            );
            assert_eq!(t.control_msgs, c.control_msgs, "{ctx}: control_msgs");
            assert_eq!(t.hash_inserts, c.hash_inserts, "{ctx}: hash_inserts");
            assert_eq!(t.hash_probes, c.hash_probes, "{ctx}: hash_probes");
        }
    }
}

/// The exported JSON is structurally sound and places every replayed event
/// inside the simulated response window.
#[test]
fn perfetto_export_is_wellformed() {
    let w = Workload::scaled(2_000, 200);
    let run = trace_join(&w, Algorithm::GraceHash, 0.5, false);
    let json = run.perfetto_json();
    assert!(gamma_trace::perfetto::looks_like_trace_json(&json));
    let response = run.sink.response_us();
    assert!(response > 0);
    for ev in run.sink.events() {
        if let Some(ts) = run.sink.absolute_ts(ev) {
            assert!(
                ts <= response,
                "event {:?} at {ts} µs lands after the response ({response} µs)",
                ev.kind
            );
        }
    }
}

/// Tracing must not change what the engine computes: the report from a
/// traced run matches an untraced run of the same point exactly.
#[test]
fn tracing_does_not_perturb_results() {
    let w = Workload::scaled(2_000, 200);
    for alg in ALGORITHMS {
        let traced = trace_join(&w, alg, 0.5, false);
        let plain = gamma_bench::SweepBuilder::new(&w).run_one(alg, 0.5);
        assert_eq!(
            traced.report.response,
            plain.report.response,
            "{}",
            alg.name()
        );
        assert_eq!(
            traced.report.result_checksum,
            plain.report.result_checksum,
            "{}",
            alg.name()
        );
    }
}
