//! The queued timing model: FIFO device-queue invariants, agreement with
//! the legacy flat-`max` bound at low utilisation, and the convoy effect
//! the legacy bound cannot express.
//!
//! The engine's default timing model drains each node's disk/NI request
//! log through single-server FIFO queues (see `gamma_des::queue` and
//! DESIGN.md §10). These tests pin the model's contract from the outside:
//!
//! * queue mechanics satisfy the single-server invariants,
//! * at the benchmark's (CPU-bound) operating point the queued response
//!   stays within a few percent of the legacy bound for all four
//!   algorithms — the paper's shapes survive the model change,
//! * a disk driven past 80 % utilisation by bursty arrivals overshoots
//!   the legacy bound by a large, asserted margin.

use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::Algorithm;
use gamma_des::{compose, fifo_drain, Request, SimTime, TimingModel, Usage};

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::SortMerge,
    Algorithm::SimpleHash,
    Algorithm::GraceHash,
    Algorithm::HybridHash,
];

fn req(issue: u64, service: u64) -> Request {
    Request {
        issue: SimTime::from_us(issue),
        service: SimTime::from_us(service),
    }
}

// ---- single-server FIFO invariants ----

#[test]
fn fifo_completion_nondecreasing_and_work_conserving() {
    // A mildly adversarial log: bursts, gaps, zero-length services.
    let log: Vec<Request> = (0..200).map(|i| req((i / 7) * 50, (i % 5) * 13)).collect();
    let mut prev = SimTime::ZERO;
    for n in 0..=log.len() {
        let s = fifo_drain(&log[..n]);
        // Completion times never run backwards as requests are appended.
        assert!(s.completion >= prev, "at {n}: {s:?}");
        prev = s.completion;
        // Utilisation ≤ 1: the server cannot do Σ service work in less
        // than Σ service time.
        assert!(s.completion >= s.service, "at {n}: {s:?}");
        // And it never idles with work queued: completion is bounded by
        // last arrival + all service.
        if let Some(last) = log[..n].last() {
            assert!(s.completion <= last.issue + s.service, "at {n}: {s:?}");
        }
    }
}

#[test]
fn empty_queue_equals_legacy_bound() {
    // When requests never contend (each issued after the previous
    // completed), the queued node time collapses to the legacy max.
    let mut u = Usage::ZERO;
    for _ in 0..20 {
        u.cpu(SimTime::from_us(100));
        u.disk(SimTime::from_us(40)); // finishes well before next issue
    }
    let nodes = vec![u];
    let legacy = compose(&nodes, 10_000_000, TimingModel::Legacy);
    let queued = compose(&nodes, 10_000_000, TimingModel::Queued);
    assert_eq!(queued.disk_wait, SimTime::ZERO);
    // The only difference is the tail: the last read is issued at cpu
    // total and still needs its service time.
    assert_eq!(
        queued.duration,
        legacy.duration + SimTime::from_us(40),
        "legacy={legacy:?} queued={queued:?}"
    );
}

// ---- low-utilisation agreement, all four algorithms ----

#[test]
fn queued_model_agrees_with_legacy_at_low_utilisation() {
    let w = Workload::scaled(3_000, 300);
    for alg in ALGORITHMS {
        let legacy = SweepBuilder::new(&w)
            .timing(TimingModel::Legacy)
            .run_one(alg, 0.5);
        let queued = SweepBuilder::new(&w)
            .timing(TimingModel::Queued)
            .run_one(alg, 0.5);
        assert_eq!(
            legacy.report.result_checksum,
            queued.report.result_checksum,
            "{}: timing model must not change results",
            alg.name()
        );
        assert!(
            queued.seconds >= legacy.seconds,
            "{}: queued completion can never beat the flat bound",
            alg.name()
        );
        eprintln!(
            "{}: legacy {:.4}s queued {:.4}s (+{:.2} %)",
            alg.name(),
            legacy.seconds,
            queued.seconds,
            (queued.seconds / legacy.seconds - 1.0) * 100.0
        );
        // Stated tolerance: at this CPU-bound operating point the queued
        // model adds per-phase device tails but no sustained queueing, so
        // it stays within 10 % of the flat bound (measured: ≤ ~6.5 %, the
        // worst case being Grace's many short spool phases).
        assert!(
            queued.seconds <= legacy.seconds * 1.10,
            "{}: queued {} vs legacy {} diverges past 10 %",
            alg.name(),
            queued.seconds,
            legacy.seconds
        );
    }
}

// ---- convoy effect: the reason the model exists ----

#[test]
fn convoy_exceeds_legacy_bound_past_80_pct_disk_utilisation() {
    // One node computes for 1 s, issuing nothing, then flushes 850 ms of
    // writes in a burst near the end of the phase (the spool/flush
    // pattern). Disk utilisation against the legacy phase time is 85 %,
    // yet the flat bound claims the phase costs max(cpu, disk) = 1 s.
    let mut u = Usage::ZERO;
    u.cpu(SimTime::from_ms(700));
    for _ in 0..100 {
        u.cpu(SimTime::from_ms(3)); // 300 ms more CPU, interleaved…
        u.disk(SimTime::from_us(8_500)); // …with 850 ms of writes
    }
    let nodes = vec![u];
    let legacy = compose(&nodes, 10_000_000, TimingModel::Legacy);
    let queued = compose(&nodes, 10_000_000, TimingModel::Queued);
    assert_eq!(legacy.duration, SimTime::from_secs(1));
    let disk_util = nodes[0].disk.as_secs() / legacy.duration.as_secs();
    assert!(
        disk_util >= 0.80,
        "scenario must load the disk: {disk_util}"
    );
    // The first write is issued at 703 ms; the arm then never catches up
    // and finishes 850 ms of service at ~1.55 s — a >50 % convoy
    // overshoot the flat bound hides entirely.
    assert!(
        queued.duration.as_secs() >= legacy.duration.as_secs() * 1.5,
        "queued {} vs legacy {}: convoy margin lost",
        queued.duration,
        legacy.duration
    );
    assert!(queued.disk_wait > SimTime::ZERO);
    assert_eq!(queued.critical_node, Some(0));
}

#[test]
fn convoy_margin_survives_end_to_end() {
    // The same effect through a real join: slow the disk 8× so scan and
    // spool phases push volumes past 80 % utilisation. The queued response
    // must exceed legacy by an asserted margin — and both models must
    // still produce the correct join result.
    let w = Workload::scaled(2_000, 200);
    let slow = |model: TimingModel| {
        let mut b = SweepBuilder::new(&w).timing(model);
        b = b.slow_disk(8);
        b.run_one(Algorithm::GraceHash, 0.5)
    };
    let legacy = slow(TimingModel::Legacy);
    let queued = slow(TimingModel::Queued);
    assert_eq!(legacy.report.result_checksum, queued.report.result_checksum);
    assert!(
        queued.seconds > legacy.seconds * 1.02,
        "queued {} vs legacy {}: expected visible convoy delay on a \
         saturated disk",
        queued.seconds,
        legacy.seconds
    );
}

// ---- satellite regressions ----

#[test]
fn empty_phase_has_no_critical_node() {
    for model in [TimingModel::Legacy, TimingModel::Queued] {
        let t = compose(&[], 10_000_000, model);
        assert_eq!(t.critical_node, None);
        let t = compose(&[Usage::ZERO, Usage::ZERO], 10_000_000, model);
        assert_eq!(t.critical_node, None);
        assert_eq!(t.duration, SimTime::ZERO);
    }
}
