#!/usr/bin/env bash
# Data-plane allocation discipline (DESIGN.md §15).
#
# The batched tuple data plane keeps per-tuple heap traffic out of the
# exec::{scan,hash} hot paths: records live in TupleBatch arenas and move
# as borrowed `&[u8]` slices. This guard fails if someone re-introduces a
# per-tuple owned copy — `.to_vec()` on a record slice, a `Vec<Vec<u8>>`
# staging vector, or an owned `Vec<u8>` tuple type — in the non-test body
# of those files. Gate 5 (`regress` + ALLOC_CEILINGS.json) catches the
# same erosion quantitatively; this catches it at review time with a
# file:line to point at.
#
# Allowed and therefore exempt:
#   * everything under the trailing `#[cfg(test)]` module (tests stage
#     fixtures however they like);
#   * comment lines (they describe the discipline, they don't break it);
#   * `join_nodes.to_vec()` — a copy of a small NodeId slice per join
#     setup, not per tuple;
#   * `&mut Vec<u8>` out-parameters (the reuse-a-buffer idiom the batch
#     plane is built on);
#   * `arena: Vec<u8>` — the hash table's arena IS the batch backing
#     store (one allocation per table, not per tuple).
#
# The gamma-prof sampling hot path (`crates/prof/src/sample.rs`) gets a
# stricter check: the per-tick fill loops run once per series per tick
# inside the recorder, so they must be allocation-free outright — callers
# pre-size the output slices.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in crates/core/src/exec/scan.rs crates/core/src/exec/hash.rs \
         crates/core/src/hash_table.rs; do
    # Non-test body: everything above the trailing #[cfg(test)] module.
    hits=$(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$f" |
        grep -nE '\.to_vec\(\)|Vec<Vec<u8>>|[^&]Vec<u8>' |
        grep -vE '^[0-9]+:\s*//|join_nodes\.to_vec|&mut Vec<u8>|arena: Vec<u8>' || true)
    if [ -n "$hits" ]; then
        echo "error: $f re-introduces per-tuple heap traffic on the data plane:" >&2
        echo "$hits" | sed "s|^|  $f:|" >&2
        fail=1
    fi
done

# Flight-recorder sampling must be allocation-free per tick.
f=crates/prof/src/sample.rs
hits=$(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$f" |
    grep -nE '\.push\(|\.to_vec\(|\.to_string\(|\.collect\(|Vec::|vec!|String::|format!|Box::' |
    grep -vE '^[0-9]+:\s*//' || true)
if [ -n "$hits" ]; then
    echo "error: $f allocates on the per-tick sampling hot path:" >&2
    echo "$hits" | sed "s|^|  $f:|" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo >&2
    echo "Route records through TupleBatch arenas / borrowed slices instead" >&2
    echo "(see DESIGN.md §15); if a copy is genuinely per-join and O(nodes)," >&2
    echo "extend the allowlist in $0 with a comment saying why." >&2
    exit 1
fi
echo "alloc discipline OK: no per-tuple owned moves in exec::{scan,hash}/hash_table, no allocs in prof sampling"
