//! # gamma-joins — facade crate
//!
//! Re-exports the whole reproduction stack of Schneider & DeWitt's
//! *"A Performance Evaluation of Four Parallel Join Algorithms in a
//! Shared-Nothing Multiprocessor Environment"* (SIGMOD 1989):
//!
//! * [`des`] — the discrete-event kernel and resource ledgers,
//! * [`net`] — the token-ring interconnect model,
//! * [`wiss`] — the WiSS-like storage substrate,
//! * [`core`] — split tables, bit filters, and the four parallel join
//!   algorithms on the simulated Gamma machine,
//! * [`wisconsin`] — the Wisconsin benchmark workload and oracle.
//!
//! ## Quickstart
//!
//! ```
//! use gamma_joins::core::{run_join, Algorithm, Machine, MachineConfig};
//! use gamma_joins::wisconsin::{join_abprime, load_hashed, WisconsinGen};
//!
//! // An 8-disk-node Gamma, relations hash-declustered on unique1.
//! let mut machine = Machine::new(MachineConfig::local_8());
//! let gen = WisconsinGen::new(1989);
//! let a_rows = gen.relation(2_000, 0);
//! let bprime_rows = gen.sample(&a_rows, 200, 1);
//! let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
//! let bprime = load_hashed(&mut machine, "Bprime", &bprime_rows, "unique1");
//!
//! // joinABprime with memory equal to the inner relation (ratio 1.0).
//! let mem = machine.relation(bprime).data_bytes;
//! let spec = join_abprime(Algorithm::HybridHash, bprime, a, "unique1", "unique1", mem);
//! let report = run_join(&mut machine, &spec);
//! assert_eq!(report.result_tuples, 200);
//! println!("hybrid joinABprime: {:.2}s", report.seconds());
//! ```

pub use gamma_core as core;
pub use gamma_des as des;
pub use gamma_net as net;
pub use gamma_wisconsin as wisconsin;
pub use gamma_wiss as wiss;
