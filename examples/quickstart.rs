//! Quickstart: run the paper's `joinABprime` benchmark with all four
//! parallel join algorithms on a simulated 8-node Gamma machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gamma_joins::core::{run_join, Algorithm, Machine, MachineConfig};
use gamma_joins::wisconsin::{join_abprime, load_hashed, oracle_join, WisconsinGen};

fn main() {
    // Generate the Wisconsin benchmark relations: A (here 20,000 tuples)
    // and Bprime, a random 10% sample of A. The paper's full scale is
    // 100,000 × 10,000; this example runs 1/5 scale to stay snappy.
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(20_000, 0);
    let bprime_rows = gen.sample(&a_rows, 2_000, 1);

    // An 8-disk-node machine, relations hash-declustered on unique1 — so a
    // join on unique1 is an HPJA join and short-circuits the network.
    let mut machine = Machine::new(MachineConfig::local_8());
    let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
    let bprime = load_hashed(&mut machine, "Bprime", &bprime_rows, "unique1");
    let inner_bytes = machine.relation(bprime).data_bytes;

    let expect = oracle_join(&bprime_rows, &a_rows, "unique1", "unique1", None, None);
    println!(
        "joinABprime: |A| = {}, |Bprime| = {}, expecting {} result tuples\n",
        a_rows.len(),
        bprime_rows.len(),
        expect.tuples
    );

    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>8}",
        "algorithm", "ratio", "response(s)", "pageIOs", "packets", "buckets"
    );
    for ratio in [1.0f64, 0.25] {
        let memory = (inner_bytes as f64 * ratio).ceil() as u64;
        for alg in Algorithm::ALL {
            let spec = join_abprime(alg, bprime, a, "unique1", "unique1", memory);
            let report = run_join(&mut machine, &spec);
            assert_eq!(
                report.result_tuples, expect.tuples,
                "validated against the oracle"
            );
            assert_eq!(report.result_checksum, expect.checksum);
            println!(
                "{:<12} {:>8.2} {:>12.2} {:>10} {:>10} {:>8}",
                report.algorithm,
                ratio,
                report.seconds(),
                report.page_ios(),
                report.packets(),
                report.buckets
            );
        }
        println!();
    }
    println!("All results validated against the reference join oracle.");
}
