//! Algorithm advisor — the paper's §5 conclusions as a toy optimizer.
//!
//! The paper concludes: *"for uniformly distributed join attribute values
//! the parallel Hybrid algorithm appears to be the algorithm of choice…
//! In the case where the join attribute values of the inner relation are
//! highly skewed and memory is limited, the optimizer should choose a
//! non-hash-based algorithm such as sort-merge."*
//!
//! This example plays optimizer: for several (skew, memory) situations it
//! runs all four algorithms on the simulated machine and reports which one
//! the measurements crown — reproducing the paper's decision surface.
//!
//! ```text
//! cargo run --release --example algorithm_advisor
//! ```

use gamma_joins::core::{run_join, Algorithm, Machine, MachineConfig};
use gamma_joins::wisconsin::{join_abprime, load_range, WisconsinGen};

struct Scenario {
    name: &'static str,
    inner_attr: &'static str,
    outer_attr: &'static str,
    ratio: f64,
}

fn main() {
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(100_000, 0);
    let bprime_rows = gen.sample(&a_rows, 10_000, 1);

    let scenarios = [
        Scenario {
            name: "uniform keys, plenty of memory",
            inner_attr: "unique1",
            outer_attr: "unique1",
            ratio: 1.0,
        },
        Scenario {
            name: "uniform keys, tight memory",
            inner_attr: "unique1",
            outer_attr: "unique1",
            ratio: 0.17,
        },
        Scenario {
            name: "skewed inner (NU), plenty of memory",
            inner_attr: "normal",
            outer_attr: "unique1",
            ratio: 1.0,
        },
        Scenario {
            name: "skewed inner (NU), tight memory",
            inner_attr: "normal",
            outer_attr: "unique1",
            ratio: 0.12,
        },
        Scenario {
            name: "skewed outer (UN), tight memory",
            inner_attr: "unique1",
            outer_attr: "normal",
            ratio: 0.17,
        },
    ];

    for sc in &scenarios {
        // Range-partition on the join attributes so scans stay balanced
        // under skew, as §4.4 does.
        let mut machine = Machine::new(MachineConfig::local_8());
        let a = load_range(&mut machine, "A", &a_rows, sc.outer_attr);
        let bprime = load_range(&mut machine, "Bprime", &bprime_rows, sc.inner_attr);
        let memory = (machine.relation(bprime).data_bytes as f64 * sc.ratio).ceil() as u64;

        println!("\n# {}  (memory ratio {:.2})", sc.name, sc.ratio);
        let mut best: Option<(String, f64)> = None;
        for alg in Algorithm::ALL {
            let mut spec = join_abprime(alg, bprime, a, sc.inner_attr, sc.outer_attr, memory);
            spec.bit_filter = true; // "bit filtering should be used because it is cheap"
            let report = run_join(&mut machine, &spec);
            let marker = if report.overflow_passes > 0 {
                "  (overflowed)"
            } else {
                ""
            };
            println!(
                "  {:<12} {:>8.2}s{}",
                report.algorithm,
                report.seconds(),
                marker
            );
            if best.as_ref().is_none_or(|(_, s)| report.seconds() < *s) {
                best = Some((report.algorithm.clone(), report.seconds()));
            }
        }
        let (name, secs) = best.unwrap();
        println!("  -> advisor picks: {name} ({secs:.2}s)");
    }

    println!("\nAs the paper concludes: Hybrid wins under uniform values at every");
    println!("memory level; a highly skewed *inner* relation with limited memory");
    println!("is the one regime where a conservative algorithm takes over.");
}
