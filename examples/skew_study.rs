//! Skew study — §4.4 end to end.
//!
//! Joins the Wisconsin relations on every combination of uniform (U) and
//! normal (N) join-attribute distributions, with and without bit filters,
//! and prints the observations the paper's Table 3/4 makes: hash joins
//! suffer when the *inner* attribute is skewed, sort-merge actually speeds
//! up (semantic early termination), skew makes bit filters sharper, and
//! the NN join's result cardinality explodes.
//!
//! ```text
//! cargo run --release --example skew_study
//! ```

use gamma_joins::core::{run_join, Algorithm, Machine, MachineConfig};
use gamma_joins::wisconsin::{join_abprime, load_range, oracle_join, WisconsinGen};

fn main() {
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(20_000, 0);
    let bprime_rows = gen.sample(&a_rows, 2_000, 1);

    let combos = [
        ("UU", "unique1", "unique1"),
        ("NU", "normal", "unique1"),
        ("UN", "unique1", "normal"),
        ("NN", "normal", "normal"),
    ];

    for (tag, inner_attr, outer_attr) in combos {
        let expect = oracle_join(&bprime_rows, &a_rows, inner_attr, outer_attr, None, None);
        println!(
            "\n# {tag} join (inner={inner_attr}, outer={outer_attr}) — {} result tuples",
            expect.tuples
        );
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>8}",
            "algorithm", "plain(s)", "filtered(s)", "gain", "ovfl"
        );
        for alg in Algorithm::ALL {
            let mut secs = [0.0f64; 2];
            let mut ovfl = 0;
            for (i, filter) in [false, true].into_iter().enumerate() {
                let mut machine = Machine::new(MachineConfig::local_8());
                let a = load_range(&mut machine, "A", &a_rows, outer_attr);
                let bprime = load_range(&mut machine, "Bprime", &bprime_rows, inner_attr);
                // The paper's stressed case: 17% memory.
                let memory = (machine.relation(bprime).data_bytes as f64 * 0.17).ceil() as u64;
                let mut spec = join_abprime(alg, bprime, a, inner_attr, outer_attr, memory);
                spec.bit_filter = filter;
                let report = run_join(&mut machine, &spec);
                assert_eq!(report.result_tuples, expect.tuples, "oracle check");
                secs[i] = report.seconds();
                ovfl = ovfl.max(report.overflow_passes);
            }
            let gain = 100.0 * (secs[0] - secs[1]) / secs[0];
            println!(
                "{:<12} {:>12.2} {:>12.2} {:>9.1}% {:>8}",
                alg.name(),
                secs[0],
                secs[1],
                gain,
                ovfl
            );
        }
    }

    println!("\nObservations to compare with the paper's Table 3/4:");
    println!(" * NU slows the hash joins (skewed build overflows sites) but");
    println!("   speeds sort-merge up — the merge ends once the skewed inner runs out;");
    println!(" * skewed attributes collide in the bit filter, leaving it sharper,");
    println!("   so NU enjoys the largest filtering gains;");
    println!(" * the NN result is far larger than either input relation.");
}
