//! Machine explorer — what-if studies over the simulated hardware.
//!
//! The simulator makes the 1989 testbed a laboratory: this example sweeps
//! configuration axes the paper could not easily vary on real hardware —
//! the number of disk nodes (speedup), the disk page size, and the network
//! packet size — and prints how `joinABprime` responds.
//!
//! ```text
//! cargo run --release --example machine_explorer
//! ```

use gamma_joins::core::cost::CostModel;
use gamma_joins::core::{run_join, Algorithm, Machine, MachineConfig};
use gamma_joins::wisconsin::{join_abprime, load_hashed, WisconsinGen};

fn run_once(
    cfg: MachineConfig,
    a_rows: &[gamma_joins::wisconsin::WisconsinRow],
    b_rows: &[gamma_joins::wisconsin::WisconsinRow],
    ratio: f64,
) -> f64 {
    let mut machine = Machine::new(cfg);
    let a = load_hashed(&mut machine, "A", a_rows, "unique1");
    let b = load_hashed(&mut machine, "Bprime", b_rows, "unique1");
    let memory = (machine.relation(b).data_bytes as f64 * ratio).ceil() as u64;
    let spec = join_abprime(Algorithm::HybridHash, b, a, "unique1", "unique1", memory);
    run_join(&mut machine, &spec).seconds()
}

fn main() {
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(20_000, 0);
    let b_rows = gen.sample(&a_rows, 2_000, 1);

    // ---- Speedup: 1..16 disk nodes, constant problem size ----
    println!("# Hybrid joinABprime speedup with machine size (ratio 0.5)");
    println!("{:<8} {:>12} {:>9}", "disks", "response(s)", "speedup");
    let mut base = None;
    for disks in [1usize, 2, 4, 8, 12, 16] {
        let cfg = MachineConfig {
            disk_nodes: disks,
            diskless_nodes: 0,
            cost: CostModel::gamma_1989(),
        };
        let secs = run_once(cfg, &a_rows, &b_rows, 0.5);
        let b0 = *base.get_or_insert(secs);
        println!("{:<8} {:>12.2} {:>8.2}x", disks, secs, b0 / secs);
    }

    // ---- Disk page size (the paper used 8 KB; DeWitt88 also ran 4 KB) ----
    println!("\n# Page-size sensitivity (8 disks, ratio 0.25)");
    println!("{:<10} {:>12}", "page", "response(s)");
    for page in [2048usize, 4096, 8192, 16384, 32768] {
        let mut cost = CostModel::gamma_1989();
        cost.disk.page_bytes = page;
        // Transfer time scales with the page; arm time does not.
        let scale = page as u64 * 4_500 / 8192;
        cost.disk.seq_read_us = 2_000 + scale;
        cost.disk.seq_write_us = 2_500 + scale;
        cost.disk.rand_read_us = 23_500 + scale;
        cost.disk.rand_write_us = 25_500 + scale;
        let cfg = MachineConfig {
            disk_nodes: 8,
            diskless_nodes: 0,
            cost,
        };
        let secs = run_once(cfg, &a_rows, &b_rows, 0.25);
        println!("{:<10} {:>12.2}", format!("{}B", page), secs);
    }

    // ---- Network packet size (Gamma's was 2 KB) ----
    println!("\n# Packet-size sensitivity, non-HPJA join (ratio 1.0)");
    println!("{:<10} {:>12}", "packet", "response(s)");
    for packet in [512u64, 1024, 2048, 4096, 8192] {
        let mut cost = CostModel::gamma_1989();
        cost.ring.packet_bytes = packet;
        let cfg = MachineConfig {
            disk_nodes: 8,
            diskless_nodes: 0,
            cost,
        };
        let mut machine = Machine::new(cfg);
        let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
        let b = load_hashed(&mut machine, "Bprime", &b_rows, "unique1");
        let memory = machine.relation(b).data_bytes;
        // unique2 join: every tuple crosses the ring, so packet size bites.
        let spec = join_abprime(Algorithm::HybridHash, b, a, "unique2", "unique2", memory);
        let secs = run_join(&mut machine, &spec).seconds();
        println!("{:<10} {:>12.2}", format!("{}B", packet), secs);
    }

    println!("\nBigger packets amortize the per-packet protocol cost — exactly why");
    println!("Gamma batched tuples and why the split-table-over-one-packet cliff");
    println!("in the paper's low-memory runs exists.");
}
