//! A composed query plan on the Gamma operator set:
//!
//! ```sql
//! SELECT twenty, COUNT(*)
//! FROM   (SELECT * FROM B WHERE unique1 < 10000) bsel
//! JOIN   A ON bsel.unique1 = A.unique1
//! GROUP  BY A.twenty
//! ```
//!
//! i.e. the `joinAselB` benchmark query followed by an aggregate — run as
//! Gamma would: an indexed selection at the disk nodes materializing
//! `bsel`, a Hybrid hash join, then a group-by aggregate executed on the
//! diskless processors, each stage accounted in the same virtual time.
//!
//! ```text
//! cargo run --release --example query_pipeline
//! ```

use gamma_joins::core::algorithms::common::RangePred;
use gamma_joins::core::operators::{self, AggFn};
use gamma_joins::core::query::run_join_materialized;
use gamma_joins::core::{Algorithm, JoinSpec, Machine, MachineConfig};
use gamma_joins::wisconsin::{load_hashed, WisconsinGen};

fn main() {
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(100_000, 0);
    let b_rows = gen.relation(100_000, 7);

    // 8 disk nodes + 8 diskless join/aggregate processors.
    let mut machine = Machine::new(MachineConfig::remote_8_plus_8());
    let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
    let b = load_hashed(&mut machine, "B", &b_rows, "unique1");
    let schema = WisconsinGen::schema();
    let u1 = schema.int_attr("unique1");

    // ---- Stage 1: indexed selection of 10% of B ----
    let (index, build_report) = operators::build_index(&mut machine, b, u1);
    let pred = RangePred {
        attr: u1,
        lo: 0,
        hi: 9_999,
    };
    let (bsel, sel_report) = operators::select_indexed(&mut machine, &index, pred, "Bsel");
    println!(
        "index build: {:>8.2}s   indexed select -> {} tuples in {:>6.2}s ({} page reads)",
        build_report.response.as_secs(),
        sel_report.tuples_out,
        sel_report.response.as_secs(),
        sel_report.total.counts.pages_read
    );

    // ---- Stage 2: Hybrid hash join on the diskless processors ----
    let mem = machine.relation(bsel).data_bytes; // ratio 1.0 on the selection
    let mut spec = JoinSpec::new(Algorithm::HybridHash, bsel, a, u1, u1, mem);
    spec.site = gamma_joins::core::JoinSite::Remote;
    spec.bit_filter = true;
    let (joined, join_report) = run_join_materialized(&mut machine, &spec, "BselJoinA");
    println!(
        "hybrid join: {:>8.2}s   {} result tuples across {} buckets",
        join_report.seconds(),
        join_report.result_tuples,
        join_report.buckets
    );

    // ---- Stage 3: group-by count on A.twenty, aggregated remotely ----
    let joined_schema = machine.relation(joined).schema.clone();
    let group = joined_schema.int_attr("r.twenty");
    let agg_nodes = machine.diskless_nodes();
    let (out, agg_report) = operators::aggregate_group(
        &mut machine,
        joined,
        group,
        group,
        AggFn::Count,
        agg_nodes,
        "counts_by_twenty",
    );
    println!(
        "group-by:    {:>8.2}s   {} groups",
        agg_report.response.as_secs(),
        agg_report.tuples_out
    );

    // ---- Read the result back and sanity-check it ----
    let r = machine.relation(out);
    let mut rows: Vec<(u32, u32)> = Vec::new();
    for n in 0..machine.cfg.disk_nodes {
        let vol = machine.nodes[n].vol();
        let f = r.fragments[n];
        for p in 0..vol.file_pages(f) {
            for rec in vol.page(f, p).records() {
                rows.push((
                    u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                    u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                ));
            }
        }
    }
    rows.sort_unstable();
    let total: u64 = rows.iter().map(|&(_, c)| c as u64).sum();
    println!("\ntwenty  count");
    for (g, c) in &rows {
        println!("{g:>6}  {c:>5}");
    }
    println!("total matches: {total} (expected 10,000 — one per selected B tuple)");
    assert_eq!(total, 10_000);

    let pipeline =
        build_report.response + sel_report.response + join_report.response + agg_report.response;
    println!("\nend-to-end virtual time: {:.2}s", pipeline.as_secs());
}
